//! The unified emulation session: one builder, one error type, one
//! execution pipeline — serial or sharded.
//!
//! [`EmulationSession`] is the single front door to the board:
//!
//! ```
//! use memories::CacheParams;
//! use memories_console::EmulationSession;
//! use memories_host::HostConfig;
//! use memories_protocol::standard;
//! use memories_workloads::micro::UniformRandom;
//!
//! # fn main() -> Result<(), memories::Error> {
//! let params = CacheParams::builder()
//!     .capacity(1 << 20).allow_scaled_down().build()?;
//! let session = EmulationSession::builder()
//!     .host(HostConfig { num_cpus: 2, ..HostConfig::s7a() })
//!     .node(params)
//!     .protocol(standard::MSI_MAP)
//!     .parallelism(2)
//!     .build()?;
//! let mut workload = UniformRandom::new(2, 8 << 20, 0.3, 1);
//! let result = session.run(&mut workload, 10_000)?;
//! assert!(result.node_stats[0].demand_references() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! Every public entry point — [`run`](EmulationSession::run),
//! [`run_profiled`](EmulationSession::run_profiled),
//! [`run_monitored`](EmulationSession::run_monitored),
//! [`run_pipelined`](EmulationSession::run_pipelined),
//! [`replay`](EmulationSession::replay),
//! [`replay_monitored`](EmulationSession::replay_monitored),
//! [`replay_stream`](EmulationSession::replay_stream) — is a thin
//! composition over [`execute`](EmulationSession::execute): pick a
//! [`TransactionSource`], pick the observation stages, drive the
//! pipeline. Profiling and sampling act through snapshot barriers, so
//! every mode works at any parallelism and produces bit-identical
//! counters (see [`crate::pipeline`]).
//!
//! Every failure converts into the workspace-wide [`memories::Error`]
//! (`enum Error` in the `memories` crate), so callers thread one error
//! type end to end.

use std::error::Error as StdError;
use std::fmt;
use std::io::Read;

use memories::{
    BoardConfig, CacheParams, Error, FilterConfig, MemoriesBoard, NodeSlot, TimingConfig,
};
use memories_bus::ProcId;
use memories_host::{HostConfig, HostMachine};
use memories_obs::{EngineTelemetry, TimeSeries};
use memories_protocol::ProtocolTable;
use memories_sim::{EmulationEngine, EngineConfig, ExecutionBackend, MonitorReport};
use memories_trace::TraceRecord;
use memories_verify::{verify_board, FuzzConfig, VerifyReport};
use memories_workloads::Workload;

use crate::pipeline::{
    ChunkedTraceSource, ExecutionOptions, LiveSource, Pipeline, PipelineRun, PipelinedLiveSource,
    TraceSource, TransactionSource,
};
use crate::result::ExperimentResult;

/// Session-builder misuse, distinct from configuration validation (which
/// the component crates report themselves).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SessionError {
    /// `run` needs a host machine; call `.host(...)` on the builder.
    MissingHost,
    /// `.protocol(...)` / `.domain(...)` apply to the most recently added
    /// node, but no node has been added yet.
    NoNodeYet,
    /// Neither `.node(...)` nor `.board(...)` configured any emulated
    /// cache.
    NoNodes,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::MissingHost => {
                write!(
                    f,
                    "running a workload needs a host machine: call .host(config)"
                )
            }
            SessionError::NoNodeYet => write!(
                f,
                "per-node builder calls apply to the latest .node(...); add a node first"
            ),
            SessionError::NoNodes => write!(f, "the session has no emulated cache nodes"),
        }
    }
}

impl StdError for SessionError {}

impl From<SessionError> for Error {
    fn from(e: SessionError) -> Self {
        Error::other(e)
    }
}

/// Builder for [`EmulationSession`] — the console's power-up flow as a
/// fluent API: host settings, node slots with per-node protocol map
/// files, and execution parallelism.
#[derive(Clone, Debug, Default)]
pub struct EmulationSessionBuilder {
    host: Option<HostConfig>,
    board: Option<BoardConfig>,
    slots: Vec<NodeSlot>,
    filter: Option<FilterConfig>,
    timing: Option<TimingConfig>,
    allow_retry: Option<bool>,
    parallelism: usize,
    batch: Option<usize>,
    sample_every: Option<u64>,
    misuse: Option<SessionError>,
    parse_error: Option<memories_protocol::ProtocolParseError>,
}

impl EmulationSessionBuilder {
    /// Sets the host machine configuration (required for live runs; a
    /// replay-only session can omit it).
    #[must_use]
    pub fn host(mut self, config: HostConfig) -> Self {
        self.host = Some(config);
        self
    }

    /// Adds an emulated cache node covering every host CPU (MESI, domain
    /// 0). Follow with [`protocol`](Self::protocol) /
    /// [`domain`](Self::domain) / [`cpus`](Self::cpus) to adjust it.
    #[must_use]
    pub fn node(mut self, params: CacheParams) -> Self {
        // CPUs are resolved against the host at build time; a placeholder
        // empty list marks "all host CPUs".
        self.slots.push(NodeSlot::new(params, []));
        self
    }

    /// Restricts the latest node to specific host CPUs.
    #[must_use]
    pub fn cpus<I: IntoIterator<Item = ProcId>>(mut self, cpus: I) -> Self {
        match self.slots.last_mut() {
            Some(slot) => slot.cpus = cpus.into_iter().collect(),
            None => {
                self.misuse.get_or_insert(SessionError::NoNodeYet);
            }
        }
        self
    }

    /// Loads a protocol map file (the §3.2 table-lookup format) into the
    /// latest node. Parse errors surface at [`build`](Self::build).
    #[must_use]
    pub fn protocol(mut self, map_text: &str) -> Self {
        match ProtocolTable::parse_map_file(map_text) {
            Ok(table) => self.protocol_table(table),
            Err(e) => {
                self.parse_error.get_or_insert(e);
                self
            }
        }
    }

    /// Loads an already-parsed protocol table into the latest node.
    #[must_use]
    pub fn protocol_table(mut self, table: ProtocolTable) -> Self {
        match self.slots.last_mut() {
            Some(slot) => slot.protocol = table,
            None => {
                self.misuse.get_or_insert(SessionError::NoNodeYet);
            }
        }
        self
    }

    /// Places the latest node in a coherence domain (Figure 4 parallel
    /// configurations).
    #[must_use]
    pub fn domain(mut self, domain: u8) -> Self {
        match self.slots.last_mut() {
            Some(slot) => slot.domain = domain,
            None => {
                self.misuse.get_or_insert(SessionError::NoNodeYet);
            }
        }
        self
    }

    /// Uses an explicit board configuration instead of accumulated
    /// `.node(...)` calls (which are then rejected at build).
    #[must_use]
    pub fn board(mut self, config: BoardConfig) -> Self {
        self.board = Some(config);
        self
    }

    /// Overrides the address-filter settings.
    #[must_use]
    pub fn filter(mut self, config: FilterConfig) -> Self {
        self.filter = Some(config);
        self
    }

    /// Overrides the SDRAM/buffer timing settings.
    #[must_use]
    pub fn timing(mut self, config: TimingConfig) -> Self {
        self.timing = Some(config);
        self
    }

    /// Whether buffer overflow posts a bus retry (default true).
    #[must_use]
    pub fn allow_retry(mut self, allow: bool) -> Self {
        self.allow_retry = Some(allow);
        self
    }

    /// Number of parallel snoop shards (default 1 = serial). Values above
    /// the board's coherence-domain count are capped; see
    /// [`EmulationEngine`].
    #[must_use]
    pub fn parallelism(mut self, shards: usize) -> Self {
        self.parallelism = shards;
        self
    }

    /// Admitted transactions per broadcast batch in parallel mode.
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Enables live counter sampling for monitored runs: every `period`
    /// admitted transactions the pipeline snapshots the board's counters
    /// into the time series that
    /// [`run_monitored`](EmulationSession::run_monitored) /
    /// [`replay_monitored`](EmulationSession::replay_monitored) return.
    /// A `period` of 0 is treated as 1. Without this call, monitored
    /// runs still return telemetry but an empty series.
    #[must_use]
    pub fn sample_every(mut self, period: u64) -> Self {
        self.sample_every = Some(period.max(1));
        self
    }

    /// Validates everything and produces a runnable session.
    ///
    /// # Errors
    ///
    /// Returns [`memories::Error`] for builder misuse, protocol map parse
    /// failures, invalid board shapes, or an invalid host configuration.
    pub fn build(self) -> Result<EmulationSession, Error> {
        if let Some(misuse) = self.misuse {
            return Err(misuse.into());
        }
        if let Some(e) = self.parse_error {
            return Err(e.into());
        }
        let mut board = match (self.board, self.slots) {
            (Some(board), _) => board,
            (None, slots) if slots.is_empty() => return Err(SessionError::NoNodes.into()),
            (None, mut slots) => {
                // Empty CPU lists mean "every host CPU".
                let all: Vec<ProcId> = match &self.host {
                    Some(h) => (0..h.num_cpus as u8).map(ProcId::new).collect(),
                    None => (0..8).map(ProcId::new).collect(),
                };
                for slot in &mut slots {
                    if slot.cpus.is_empty() {
                        slot.cpus = all.clone();
                    }
                }
                BoardConfig::from_slots(slots)?
            }
        };
        if let Some(filter) = self.filter {
            board.filter = filter;
        }
        if let Some(timing) = self.timing {
            board.timing = timing;
        }
        if let Some(allow) = self.allow_retry {
            board.allow_retry = allow;
        }
        // Validate both configurations eagerly: a session that builds,
        // runs.
        MemoriesBoard::new(board.clone())?;
        if let Some(host) = &self.host {
            HostMachine::new(host.clone()).map_err(Error::host)?;
        }
        Ok(EmulationSession {
            host: self.host,
            board,
            parallelism: self.parallelism.max(1),
            batch: self.batch.unwrap_or(EngineConfig::DEFAULT_BATCH),
            sample_every: self.sample_every,
        })
    }
}

/// The outcome of [`EmulationSession::replay`].
#[derive(Debug)]
pub struct ReplayResult {
    /// The board after replaying the whole trace.
    pub board: MemoriesBoard,
    /// Trace records replayed.
    pub records: u64,
}

/// The outcome of [`EmulationSession::run_monitored`]: the usual
/// experiment statistics plus the live counter series and the engine's
/// own telemetry.
#[derive(Debug)]
pub struct MonitoredRun {
    /// The same statistics [`EmulationSession::run`] returns.
    pub result: ExperimentResult,
    /// Counter samples taken every
    /// [`sample_every`](EmulationSessionBuilder::sample_every) admitted
    /// transactions (empty if sampling was not enabled).
    pub series: TimeSeries,
    /// Engine performance counters: batches, stalls, per-shard
    /// throughput, wall time.
    pub telemetry: EngineTelemetry,
}

/// A validated emulation setup, ready to run a live workload or replay a
/// captured trace, serially or across parallel snoop shards.
///
/// Built by [`EmulationSession::builder`]. Every run mode flows through
/// the same [`TransactionSource`] → [`Pipeline`] →
/// [`ExecutionBackend`] path; profiling and sampling observe through
/// snapshot barriers, so results are bit-identical at any
/// [`parallelism`](EmulationSessionBuilder::parallelism) (see
/// [`EmulationEngine`]).
#[derive(Clone, Debug)]
pub struct EmulationSession {
    host: Option<HostConfig>,
    board: BoardConfig,
    parallelism: usize,
    batch: usize,
    sample_every: Option<u64>,
}

impl EmulationSession {
    /// Starts a session builder.
    pub fn builder() -> EmulationSessionBuilder {
        EmulationSessionBuilder::default()
    }

    /// The validated board configuration.
    pub fn board_config(&self) -> &BoardConfig {
        &self.board
    }

    /// Configured shard parallelism.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Verifies this session's board configuration: model-checks every
    /// distinct protocol loaded into a node slot, then differentially
    /// fuzzes the exact topology (serial vs. parallel engines vs. the
    /// reference model) with the given fuzz configuration.
    ///
    /// This is the programmatic face of the `memories-verify` subsystem —
    /// the same checks the CI `verify` job runs against the builtin
    /// protocols, but aimed at whatever (possibly hand-written) tables
    /// and node layout this session was built with.
    ///
    /// # Errors
    ///
    /// Propagates board construction or corpus I/O failures. A *verifier
    /// finding* (a protocol violation or an engine divergence) is not an
    /// error: it is reported in the returned [`VerifyReport`], whose
    /// `is_clean` answers pass/fail.
    pub fn verify(&self, config: FuzzConfig) -> Result<VerifyReport, Error> {
        let slots = self
            .board
            .slots
            .iter()
            .map(|slot| {
                (
                    slot.params,
                    slot.protocol.clone(),
                    slot.domain,
                    slot.cpus.clone(),
                )
            })
            .collect();
        verify_board(slots, config)
    }

    /// The engine configuration this session's parallelism implies.
    fn engine_config(&self) -> EngineConfig {
        if self.parallelism <= 1 {
            EngineConfig::serial()
        } else {
            EngineConfig::parallel(self.parallelism).with_batch(self.batch)
        }
    }

    /// Drives an arbitrary [`TransactionSource`] through this session's
    /// backend with the given observation stages — the primitive every
    /// run/replay method composes.
    ///
    /// # Errors
    ///
    /// Propagates source failures (host construction, trace decoding)
    /// and any pipeline barrier/teardown failure.
    pub fn execute<S: TransactionSource>(
        &self,
        mut source: S,
        options: ExecutionOptions,
    ) -> Result<PipelineRun, Error> {
        let board = MemoriesBoard::new(self.board.clone())?;
        let backend: Box<dyn ExecutionBackend> =
            Box::new(EmulationEngine::new(board, self.engine_config()));
        let (pipeline, stats) = source.drive(Pipeline::new(backend, &options))?;
        pipeline.finish(stats)
    }

    /// Builds a live source for this session's host, or reports that the
    /// builder never got one.
    fn live_source<'w>(
        &self,
        workload: &'w mut dyn Workload,
        refs: u64,
    ) -> Result<LiveSource<'w>, Error> {
        let host = self.host.clone().ok_or(SessionError::MissingHost)?;
        Ok(LiveSource::new(host, workload, refs))
    }

    /// Drives `refs` workload references through the host machine with
    /// the board snooping, and returns the collected statistics.
    ///
    /// The board snoops through the pipeline, so its buffer-overflow
    /// retry cannot feed back into the live bus; healthy runs post zero
    /// retries (§3.3), and the retry *count* is exact either way.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::MissingHost`] (as [`memories::Error`]) if
    /// the builder never got a host configuration.
    pub fn run(&self, workload: &mut dyn Workload, refs: u64) -> Result<ExperimentResult, Error> {
        self.run_profiled(workload, refs, 0)
    }

    /// Like [`EmulationSession::run`], additionally sampling a per-window
    /// miss ratio every `window_refs` references (pass 0 for no profile).
    /// Profiling observes through snapshot barriers, so it runs at the
    /// configured parallelism — a profiled run is no longer serial.
    ///
    /// # Errors
    ///
    /// As [`EmulationSession::run`].
    pub fn run_profiled(
        &self,
        workload: &mut dyn Workload,
        refs: u64,
        window_refs: u64,
    ) -> Result<ExperimentResult, Error> {
        let source = self.live_source(workload, refs)?;
        let run = self.execute(source, ExecutionOptions::new().window_refs(window_refs))?;
        Ok(experiment_result(run))
    }

    /// Like [`EmulationSession::run`], but also returns the live counter
    /// series (sampled every
    /// [`sample_every`](EmulationSessionBuilder::sample_every) admitted
    /// transactions — the board console's "watch the counters while it
    /// runs" mode) and the engine's own telemetry.
    ///
    /// With sampling disabled the pipeline takes no barriers, so the
    /// final counters are bit-identical to [`EmulationSession::run`];
    /// with sampling enabled they still are, because barrier-induced
    /// batch boundaries don't change results (see [`EmulationEngine`]).
    ///
    /// # Errors
    ///
    /// As [`EmulationSession::run`], plus any sampling-barrier failure.
    pub fn run_monitored(
        &self,
        workload: &mut dyn Workload,
        refs: u64,
    ) -> Result<MonitoredRun, Error> {
        let source = self.live_source(workload, refs)?;
        let mut run = self.execute(
            source,
            ExecutionOptions::new().sample_every(self.sample_every),
        )?;
        let series = std::mem::take(&mut run.series);
        let telemetry = std::mem::take(&mut run.telemetry);
        Ok(MonitoredRun {
            series,
            telemetry,
            result: experiment_result(run),
        })
    }

    /// Like [`EmulationSession::run`], but with host simulation on its
    /// own producer thread: the host fills pooled transaction blocks and
    /// ships them over a bounded queue while this thread drains them
    /// into the board pipeline, so host MESI simulation overlaps board
    /// emulation instead of alternating with it. Results are
    /// bit-identical to [`run`](EmulationSession::run); the workload
    /// must be `Send` because it moves to the producer thread for the
    /// duration of the call.
    ///
    /// # Errors
    ///
    /// As [`EmulationSession::run`].
    pub fn run_pipelined(
        &self,
        workload: &mut (dyn Workload + Send),
        refs: u64,
    ) -> Result<ExperimentResult, Error> {
        let source = self.pipelined_source(workload, refs)?;
        let run = self.execute(source, ExecutionOptions::new())?;
        Ok(experiment_result(run))
    }

    /// [`run_monitored`](EmulationSession::run_monitored) with the
    /// pipelined producer of
    /// [`run_pipelined`](EmulationSession::run_pipelined): counter
    /// samples land at the exact same admitted-transaction positions as
    /// the non-pipelined run, and the telemetry additionally reports the
    /// producer's block/stall counters.
    ///
    /// # Errors
    ///
    /// As [`EmulationSession::run_monitored`].
    pub fn run_monitored_pipelined(
        &self,
        workload: &mut (dyn Workload + Send),
        refs: u64,
    ) -> Result<MonitoredRun, Error> {
        let source = self.pipelined_source(workload, refs)?;
        let mut run = self.execute(
            source,
            ExecutionOptions::new().sample_every(self.sample_every),
        )?;
        let series = std::mem::take(&mut run.series);
        let telemetry = std::mem::take(&mut run.telemetry);
        Ok(MonitoredRun {
            series,
            telemetry,
            result: experiment_result(run),
        })
    }

    /// Builds a pipelined live source for this session's host, or
    /// reports that the builder never got one.
    fn pipelined_source<'w>(
        &self,
        workload: &'w mut (dyn Workload + Send),
        refs: u64,
    ) -> Result<PipelinedLiveSource<'w>, Error> {
        let host = self.host.clone().ok_or(SessionError::MissingHost)?;
        Ok(PipelinedLiveSource::new(host, workload, refs))
    }

    /// Replays captured trace records through a fresh board offline — the
    /// paper's repeatable off-line analysis path (§1) — re-timed at
    /// `cycle_spacing` bus cycles per record (60 ≈ the paper's 20%
    /// utilization point). Uses the configured parallelism.
    ///
    /// # Errors
    ///
    /// Propagates trace decoding errors (anything convertible into
    /// [`memories::Error`]).
    pub fn replay<I, E>(&self, records: I, cycle_spacing: u64) -> Result<ReplayResult, Error>
    where
        I: IntoIterator<Item = Result<TraceRecord, E>>,
        E: Into<Error>,
    {
        let run = self.execute(
            TraceSource::new(records, cycle_spacing),
            ExecutionOptions::new(),
        )?;
        Ok(ReplayResult {
            board: run.board,
            records: run.units,
        })
    }

    /// Like [`EmulationSession::replay`], but also samples the counters
    /// every [`sample_every`](EmulationSessionBuilder::sample_every)
    /// admitted transactions and returns the series and telemetry
    /// alongside the replayed board.
    ///
    /// # Errors
    ///
    /// As [`EmulationSession::replay`], plus any sampling-barrier
    /// failure.
    pub fn replay_monitored<I, E>(
        &self,
        records: I,
        cycle_spacing: u64,
    ) -> Result<(ReplayResult, MonitorReport), Error>
    where
        I: IntoIterator<Item = Result<TraceRecord, E>>,
        E: Into<Error>,
    {
        let run = self.execute(
            TraceSource::new(records, cycle_spacing),
            ExecutionOptions::new().sample_every(self.sample_every),
        )?;
        Ok((
            ReplayResult {
                board: run.board,
                records: run.units,
            },
            MonitorReport {
                series: run.series,
                telemetry: run.telemetry,
            },
        ))
    }

    /// Replays a trace *stream* — any [`Read`] positioned at a trace
    /// file header — decoding records in fixed-size chunks, so peak
    /// memory stays O(chunk) no matter how long the trace is. This is
    /// the path for traces that don't fit in memory (the board can
    /// capture a billion references — §2.3).
    ///
    /// # Errors
    ///
    /// Propagates header validation and record decoding errors; a
    /// truncated or corrupt trace fails cleanly without panicking.
    pub fn replay_stream<R: Read>(
        &self,
        reader: R,
        cycle_spacing: u64,
    ) -> Result<ReplayResult, Error> {
        let run = self.execute(
            ChunkedTraceSource::new(reader, cycle_spacing)?,
            ExecutionOptions::new(),
        )?;
        Ok(ReplayResult {
            board: run.board,
            records: run.units,
        })
    }
}

/// Converts a live-source pipeline run into the classic result shape.
///
/// # Panics
///
/// Panics if the run did not come from a live source (no machine/bus
/// statistics).
fn experiment_result(run: PipelineRun) -> ExperimentResult {
    ExperimentResult {
        node_stats: run.node_stats,
        machine: run.machine.expect("live sources report machine statistics"),
        bus: run.bus.expect("live sources report bus statistics"),
        retries_posted: run.retries_posted,
        profile: run.profile,
        board: run.board,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::Shared;
    use memories_bus::NodeId;
    use memories_host::AccessKind;
    use memories_protocol::standard;
    use memories_workloads::micro::{Sequential, UniformRandom};
    use memories_workloads::{RefKind, WorkloadEvent};

    fn params(capacity: u64) -> CacheParams {
        CacheParams::builder()
            .capacity(capacity)
            .ways(2)
            .allow_scaled_down()
            .build()
            .unwrap()
    }

    fn host(cpus: usize) -> HostConfig {
        HostConfig {
            num_cpus: cpus,
            inner_cache: None,
            outer_cache: memories_bus::Geometry::new(64 << 10, 2, 128).unwrap(),
            ..HostConfig::s7a()
        }
    }

    #[test]
    fn builder_misuse_is_reported_at_build() {
        let err = EmulationSession::builder()
            .protocol(standard::MSI_MAP)
            .node(params(1 << 20))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("add a node first"), "{err}");

        let err = EmulationSession::builder()
            .host(host(2))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no emulated cache nodes"), "{err}");

        let err = EmulationSession::builder()
            .node(params(1 << 20))
            .protocol("garbage")
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err:?}");

        let err = EmulationSession::builder()
            .node(params(1 << 20))
            .build()
            .unwrap()
            .run(&mut UniformRandom::new(2, 1 << 20, 0.3, 1), 10)
            .unwrap_err();
        assert!(err.to_string().contains("host machine"), "{err}");
    }

    /// The pipeline path must reproduce the classic hand-rolled harness
    /// (board attached straight to the bus) bit for bit.
    #[test]
    fn session_run_matches_a_directly_attached_board() {
        let cfg = BoardConfig::single_node(params(1 << 20), (0..2).map(ProcId::new)).unwrap();

        // Classic path: board as a plain bus listener, pumped by hand.
        let board = Shared::new(MemoriesBoard::new(cfg.clone()).unwrap());
        let mut machine = HostMachine::new(host(2)).unwrap();
        machine.attach_listener(Box::new(board.handle()));
        let mut w1 = UniformRandom::new(2, 16 << 20, 0.3, 5);
        let mut done = 0;
        while done < 20_000 {
            match w1.next_event() {
                WorkloadEvent::Ref(r) => {
                    let kind = match r.kind {
                        RefKind::Load => AccessKind::Load,
                        RefKind::Store => AccessKind::Store,
                    };
                    machine.access(r.cpu, kind, r.addr);
                    done += 1;
                }
                WorkloadEvent::Instructions { cpu, count } => {
                    machine.tick_instructions(cpu, count);
                }
                _ => {}
            }
        }
        let classic_loads = machine.stats().total_loads();
        drop(machine.detach_listeners());
        let classic = board.try_unwrap().map_err(|_| ()).unwrap();

        let session = EmulationSession::builder()
            .host(host(2))
            .node(params(1 << 20))
            .build()
            .unwrap();
        let mut w2 = UniformRandom::new(2, 16 << 20, 0.3, 5);
        let new = session.run(&mut w2, 20_000).unwrap();

        assert_eq!(classic.retries_posted(), new.retries_posted);
        assert_eq!(classic.statistics_report(), new.board.statistics_report());
        assert_eq!(classic_loads, new.machine.total_loads());
    }

    #[test]
    fn run_collects_consistent_statistics() {
        let session = EmulationSession::builder()
            .host(host(2))
            .node(params(1 << 20))
            .build()
            .unwrap();
        let mut w = UniformRandom::new(2, 16 << 20, 0.3, 5);
        let result = session.run(&mut w, 20_000).unwrap();
        assert_eq!(
            result.machine.total_loads() + result.machine.total_stores(),
            20_000
        );
        // The board sees exactly the machine's L2 miss/upgrade traffic.
        let demand = result.node_stats[0].demand_references();
        let expected = result.machine.outer_misses() + result.machine.total().upgrades;
        assert_eq!(demand, expected);
        assert_eq!(result.retries_posted, 0);
        assert!(result.bus.utilization() > 0.0);
    }

    #[test]
    fn profile_windows_cover_the_run() {
        let session = EmulationSession::builder()
            .host(host(2))
            .node(params(1 << 20))
            .build()
            .unwrap();
        let mut w = UniformRandom::new(2, 16 << 20, 0.3, 6);
        let result = session.run_profiled(&mut w, 10_000, 2_000).unwrap();
        assert_eq!(result.profile.len(), 5);
        assert_eq!(result.profile.last().unwrap().end_ref, 10_000);
        for p in &result.profile {
            assert_eq!(p.window_miss_ratio.len(), 1);
            assert!((0.0..=1.0).contains(&p.window_miss_ratio[0]));
        }
        // Bus cycles increase monotonically across windows.
        for w in result.profile.windows(2) {
            assert!(w[1].bus_cycle >= w[0].bus_cycle);
        }
    }

    /// Profiled runs no longer force the serial path: the telemetry
    /// proves the shards actually ran, and the windows are identical to
    /// the serial profile.
    #[test]
    fn profiled_runs_use_the_configured_parallelism() {
        let configs = vec![params(1 << 20), params(2 << 20)];
        let cpus: Vec<ProcId> = (0..2).map(ProcId::new).collect();
        let board = BoardConfig::parallel_configs(configs, cpus).unwrap();

        let profile_at = |parallelism: usize| {
            let session = EmulationSession::builder()
                .host(host(2))
                .board(board.clone())
                .parallelism(parallelism)
                .batch(256)
                .build()
                .unwrap();
            let mut w = UniformRandom::new(2, 16 << 20, 0.3, 7);
            let source = session.live_source(&mut w, 12_000).unwrap();
            let run = session
                .execute(source, ExecutionOptions::new().window_refs(3_000))
                .unwrap();
            assert_eq!(run.profile.len(), 4);
            run
        };

        let serial = profile_at(1);
        assert!(serial.telemetry.shards.is_empty());
        let parallel = profile_at(2);
        assert_eq!(
            parallel.telemetry.shards.len(),
            2,
            "profiled run must keep its shards"
        );
        assert_eq!(serial.profile, parallel.profile);
        assert_eq!(
            serial.board.statistics_report(),
            parallel.board.statistics_report()
        );
    }

    #[test]
    fn sequential_workload_hits_after_warmup() {
        let session = EmulationSession::builder()
            .host(host(2))
            .node(params(1 << 20))
            .build()
            .unwrap();
        // Footprint 128 KB per cpu fits the 1 MB emulated cache: after the
        // first lap everything hits (in the *emulated* cache; the host L2
        // keeps missing since 64 KB < footprint).
        let mut w = Sequential::new(2, 128 << 10, 128);
        let result = session.run(&mut w, 8_000).unwrap();
        let stats = &result.node_stats[0];
        assert!(stats.demand_references() > 2_000);
        assert!(
            stats.hit_ratio() > 0.4,
            "emulated hit ratio {:.3} too low after warmup",
            stats.hit_ratio()
        );
    }

    #[test]
    fn parallel_session_matches_serial_bit_for_bit() {
        let configs = vec![params(1 << 20), params(2 << 20), params(4 << 20)];
        let cpus: Vec<ProcId> = (0..2).map(ProcId::new).collect();
        let board = BoardConfig::parallel_configs(configs, cpus).unwrap();

        let run = |parallelism: usize| {
            let session = EmulationSession::builder()
                .host(host(2))
                .board(board.clone())
                .parallelism(parallelism)
                .batch(256)
                .build()
                .unwrap();
            let mut w = UniformRandom::new(2, 16 << 20, 0.3, 9);
            session.run(&mut w, 20_000).unwrap()
        };

        let serial = run(1);
        assert_eq!(serial.retries_posted, 0, "healthy run must not retry");
        for shards in [2, 3] {
            let par = run(shards);
            assert_eq!(
                serial.board.statistics_report(),
                par.board.statistics_report(),
                "{shards}-shard run diverged from serial"
            );
            assert_eq!(serial.bus.transactions, par.bus.transactions);
        }
    }

    #[test]
    fn monitored_run_matches_plain_run_and_samples() {
        let configs = vec![params(1 << 20), params(2 << 20)];
        let cpus: Vec<ProcId> = (0..2).map(ProcId::new).collect();
        let board = BoardConfig::parallel_configs(configs, cpus).unwrap();

        for parallelism in [1, 2] {
            let make = |sample: Option<u64>| {
                let mut b = EmulationSession::builder()
                    .host(host(2))
                    .board(board.clone())
                    .parallelism(parallelism)
                    .batch(256);
                if let Some(n) = sample {
                    b = b.sample_every(n);
                }
                b.build().unwrap()
            };
            let mut w = UniformRandom::new(2, 16 << 20, 0.3, 9);
            let plain = make(None).run(&mut w, 20_000).unwrap();

            // Sampling disabled: bit-identical to run().
            let mut w = UniformRandom::new(2, 16 << 20, 0.3, 9);
            let silent = make(None).run_monitored(&mut w, 20_000).unwrap();
            assert_eq!(
                plain.board.statistics_report(),
                silent.result.board.statistics_report()
            );
            assert!(silent.series.is_empty());
            assert!(silent.telemetry.seen > 0);

            // Sampling enabled: still bit-identical, series populated.
            let mut w = UniformRandom::new(2, 16 << 20, 0.3, 9);
            let monitored = make(Some(1_000)).run_monitored(&mut w, 20_000).unwrap();
            assert_eq!(
                plain.board.statistics_report(),
                monitored.result.board.statistics_report()
            );
            assert!(
                monitored.series.len() >= 5,
                "parallelism {parallelism}: expected samples, got {}",
                monitored.series.len()
            );
            let last = monitored.series.last().unwrap();
            assert!(last.cumulative.demand_references > 0);
        }
    }

    #[test]
    fn replay_matches_a_live_run() {
        use memories::TraceCapture;

        let cfg = BoardConfig::single_node(params(1 << 20), (0..2).map(ProcId::new)).unwrap();
        let board = Shared::new(MemoriesBoard::new(cfg.clone()).unwrap());
        let capture = Shared::new(TraceCapture::new(1 << 20));
        let mut machine = HostMachine::new(host(2)).unwrap();
        machine.attach_listener(Box::new(board.handle()));
        machine.attach_listener(Box::new(capture.handle()));
        let mut w = UniformRandom::new(2, 8 << 20, 0.3, 3);
        let mut done = 0;
        while done < 5_000 {
            if let WorkloadEvent::Ref(r) = w.next_event() {
                let kind = match r.kind {
                    RefKind::Load => AccessKind::Load,
                    RefKind::Store => AccessKind::Store,
                };
                machine.access(r.cpu, kind, r.addr);
                done += 1;
            }
        }
        drop(machine.detach_listeners());

        let records = capture.with(|c| c.records().to_vec());
        for parallelism in [1, 2] {
            let session = EmulationSession::builder()
                .board(cfg.clone())
                .parallelism(parallelism)
                .build()
                .unwrap();
            let result = session
                .replay(
                    records
                        .iter()
                        .cloned()
                        .map(Ok::<_, std::convert::Infallible>),
                    60,
                )
                .unwrap();
            assert!(result.records > 0);
            board.with(|live| {
                assert_eq!(
                    live.node(NodeId::new(0)).counters(),
                    result.board.node(NodeId::new(0)).counters(),
                    "replay (parallelism {parallelism}) diverged from the live run"
                );
            });
        }
    }

    /// `replay_stream` decodes off the reader in chunks and lands on the
    /// same board as the buffered `replay`; damaged streams error out
    /// cleanly and leave the session reusable.
    #[test]
    fn replay_stream_matches_replay_and_survives_damage() {
        use memories_trace::{TraceError, TraceWriter};

        let cfg = BoardConfig::single_node(params(64 << 10), (0..2).map(ProcId::new)).unwrap();
        let session = EmulationSession::builder()
            .board(cfg)
            .parallelism(2)
            .batch(128)
            .build()
            .unwrap();

        let records: Vec<TraceRecord> = (0..4_000)
            .map(|i| {
                TraceRecord::from_transaction(&memories_bus::Transaction::new(
                    i,
                    i * 60,
                    ProcId::new((i % 2) as u8),
                    memories_bus::BusOp::Read,
                    memories_bus::Address::new((i % 512) * 128),
                    memories_bus::SnoopResponse::Null,
                ))
            })
            .collect();
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();

        let buffered = session
            .replay(records.into_iter().map(Ok::<_, Error>), 60)
            .unwrap();
        let streamed = session.replay_stream(bytes.as_slice(), 60).unwrap();
        assert_eq!(streamed.records, 4_000);
        assert_eq!(
            buffered.board.statistics_report(),
            streamed.board.statistics_report()
        );

        // Truncated mid-record: error, not panic.
        let err = session
            .replay_stream(&bytes[..bytes.len() - 3], 60)
            .unwrap_err();
        assert!(
            matches!(&err, Error::Trace(TraceError::TruncatedRecord { .. })),
            "{err:?}"
        );
        // Corrupt header: rejected before any record flows.
        let err = session.replay_stream(&b"JUNKJUNK"[..], 60).unwrap_err();
        assert!(
            matches!(&err, Error::Trace(TraceError::BadMagic { .. })),
            "{err:?}"
        );
        // The session itself is stateless across calls: a good replay
        // still works after the failures.
        let again = session.replay_stream(bytes.as_slice(), 60).unwrap();
        assert_eq!(again.records, 4_000);
    }
}
