//! The unified execution pipeline: a [`TransactionSource`] streaming into
//! an [`ExecutionBackend`] through optional observation stages.
//!
//! Every way of exercising the board — driving a live workload through
//! the host machine, replaying a captured trace, pushing synthetic
//! transactions — reduces to the same shape: a *source* produces one bus
//! transaction stream; a *backend* consumes it; observation stages watch
//! the stream in between. [`Pipeline`] is that shape made concrete:
//!
//! ```text
//!   TransactionSource ──feed──▶ [sampler] ──▶ [profiler] ──▶ ExecutionBackend
//!   (live / trace / stream)        │              │          (serial board or
//!                                  └── barrier ───┘           sharded engine)
//! ```
//!
//! Both stages observe exclusively through
//! [`ExecutionBackend::barrier`] — an exact counter snapshot of the
//! stream position so far. Because a barrier is bit-identical to a
//! serial board at the same position regardless of backend parallelism,
//! *every* pipeline composition (plain, sampled, profiled) produces
//! bit-identical boards at any shard count; the differential suite
//! enforces this.
//!
//! Sources are single-shot: [`TransactionSource::drive`] consumes the
//! stream and hands the pipeline back together with whatever statistics
//! the source itself collected (host machine counters for live runs).
//! [`ChunkedTraceSource`] streams records straight off a reader in
//! fixed-size batches, so replaying a multi-gigabyte trace holds peak
//! memory to O(chunk) — never a whole-trace `Vec`.

use std::error::Error as StdError;
use std::fmt;
use std::io::Read;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};

use memories::{BoardSnapshot, Error, MemoriesBoard, NodeStats};
use memories_bus::{
    BlockPool, BusListener, BusStats, ListenerReaction, NodeId, PoolStats, PooledBlock,
    Transaction, TransactionBlock,
};
use memories_host::{AccessKind, HostConfig, HostMachine, MachineStats};
use memories_obs::{EngineTelemetry, TimeSeries};
use memories_sim::ExecutionBackend;
use memories_trace::{TraceReader, TraceRecord};
use memories_workloads::{RefKind, Workload, WorkloadEvent};

use crate::result::ProfilePoint;
use crate::shared::Shared;

/// Pipeline misuse, distinct from board/trace errors (which keep their
/// own [`memories::Error`] variants).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// A single-shot source was driven a second time.
    SourceExhausted,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::SourceExhausted => {
                write!(
                    f,
                    "this transaction source was already driven; sources are single-shot"
                )
            }
        }
    }
}

impl StdError for PipelineError {}

impl From<PipelineError> for Error {
    fn from(e: PipelineError) -> Self {
        Error::other(e)
    }
}

/// What a pipeline should observe while the stream flows.
///
/// The default observes nothing: transactions flow straight to the
/// backend, which is exactly [`EmulationSession::run`] /
/// [`EmulationSession::replay`].
///
/// [`EmulationSession::run`]: crate::EmulationSession::run
/// [`EmulationSession::replay`]: crate::EmulationSession::replay
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecutionOptions {
    /// Take a windowed miss-ratio [`ProfilePoint`] every this many
    /// source units (workload references / trace records); 0 disables
    /// profiling.
    pub window_refs: u64,
    /// Record a counter sample into the time series every this many
    /// *admitted* transactions; `None` disables sampling. A period of 0
    /// is treated as 1.
    pub sample_every: Option<u64>,
}

impl ExecutionOptions {
    /// Observe nothing (the plain-run configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the profiling window ([`window_refs`](Self::window_refs)).
    #[must_use]
    pub fn window_refs(mut self, window: u64) -> Self {
        self.window_refs = window;
        self
    }

    /// Sets the sampling period ([`sample_every`](Self::sample_every)).
    #[must_use]
    pub fn sample_every(mut self, period: Option<u64>) -> Self {
        self.sample_every = period;
        self
    }
}

/// Statistics a source collected on its own side of the pipeline while
/// driving the stream.
#[derive(Debug, Default)]
pub struct SourceStats {
    /// Source units produced: workload references for live sources,
    /// records for trace sources, transactions for raw streams.
    pub units: u64,
    /// Host machine counters (live sources only).
    pub machine: Option<MachineStats>,
    /// Host bus statistics (live sources only).
    pub bus: Option<BusStats>,
    /// Producer-stage counters (pipelined sources only); folded into the
    /// run's [`EngineTelemetry`] by [`Pipeline::finish`].
    pub producer: Option<ProducerStats>,
}

/// What a pipelined producer stage counted while running ahead of the
/// consumer.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProducerStats {
    /// Blocks the producer shipped over the bounded queue.
    pub blocks: u64,
    /// Times the producer found the block queue full and had to block —
    /// the pipelined counterpart of the engine's `producer_stalls`.
    pub stalls: u64,
    /// The producer-side block pool's allocation counters.
    pub pool: PoolStats,
}

/// Everything a finished pipeline hands back.
#[derive(Debug)]
pub struct PipelineRun {
    /// The board after consuming the whole stream.
    pub board: MemoriesBoard,
    /// Per-node derived statistics, indexed by node id.
    pub node_stats: Vec<NodeStats>,
    /// Retries the board posted (zero in healthy runs — §3.3).
    pub retries_posted: u64,
    /// Windowed miss-ratio profile (empty unless
    /// [`ExecutionOptions::window_refs`] was set).
    pub profile: Vec<ProfilePoint>,
    /// Counter samples (empty unless
    /// [`ExecutionOptions::sample_every`] was set).
    pub series: TimeSeries,
    /// The backend's own performance telemetry.
    pub telemetry: EngineTelemetry,
    /// Source units driven (see [`SourceStats::units`]).
    pub units: u64,
    /// Host machine counters (live sources only).
    pub machine: Option<MachineStats>,
    /// Host bus statistics (live sources only).
    pub bus: Option<BusStats>,
}

/// Counter-sampling stage: replicate the engine's auto-sampling contract
/// — after each feed, if `admitted >= next_at`, take a barrier, record
/// it, and re-arm at `admitted + period`.
#[derive(Debug)]
struct Sampler {
    period: u64,
    next_at: u64,
    series: TimeSeries,
}

/// Windowed-profiling stage: every `window` source units, take a barrier
/// and turn per-node demand hit/miss deltas into a [`ProfilePoint`].
#[derive(Debug)]
struct Profiler {
    window: u64,
    next_at: u64,
    /// Cumulative (demand hits, demand misses) per node at the previous
    /// window boundary; sized lazily from the first snapshot.
    prev: Vec<(u64, u64)>,
    points: Vec<ProfilePoint>,
}

impl Profiler {
    fn record(&mut self, units: u64, cycle: u64, snap: &BoardSnapshot) {
        self.next_at += self.window;
        if self.prev.len() < snap.node_count() {
            self.prev.resize(snap.node_count(), (0, 0));
        }
        let mut ratios = Vec::with_capacity(snap.node_count());
        for (i, slot) in self.prev.iter_mut().enumerate() {
            let s = snap.node_stats(i);
            let (h, m) = (s.demand_hits(), s.demand_misses());
            let (dh, dm) = (h - slot.0, m - slot.1);
            *slot = (h, m);
            let total = dh + dm;
            ratios.push(if total == 0 {
                0.0
            } else {
                dm as f64 / total as f64
            });
        }
        self.points.push(ProfilePoint {
            end_ref: units,
            bus_cycle: cycle,
            window_miss_ratio: ratios,
        });
    }
}

/// A backend plus its observation stages, ready to be driven by a
/// [`TransactionSource`].
///
/// Barrier failures inside [`feed`](Self::feed) / [`end_unit`](Self::end_unit)
/// cannot surface there (sources push unconditionally), so they are
/// parked and returned by [`finish`](Self::finish) — matching the
/// engine's own deferred-error contract.
pub struct Pipeline {
    backend: Box<dyn ExecutionBackend>,
    sampler: Option<Sampler>,
    profiler: Option<Profiler>,
    units: u64,
    deferred: Option<Error>,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("shards", &self.backend.shard_count())
            .field("admitted", &self.backend.admitted())
            .field("units", &self.units)
            .field("sampler", &self.sampler)
            .field("profiler", &self.profiler)
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Wraps a backend in the stages `options` asks for.
    pub fn new(backend: Box<dyn ExecutionBackend>, options: &ExecutionOptions) -> Self {
        let sampler = options.sample_every.map(|period| {
            let period = period.max(1);
            Sampler {
                period,
                next_at: backend.admitted() + period,
                series: TimeSeries::new(),
            }
        });
        let profiler = (options.window_refs > 0).then(|| Profiler {
            window: options.window_refs,
            next_at: options.window_refs,
            prev: Vec::new(),
            points: Vec::new(),
        });
        Pipeline {
            backend,
            sampler,
            profiler,
            units: 0,
            deferred: None,
        }
    }

    /// Feeds one bus transaction, in stream order, then runs the
    /// sampling stage.
    pub fn feed(&mut self, txn: &Transaction) {
        self.backend.feed(txn);
        let due = self
            .sampler
            .as_ref()
            .is_some_and(|s| self.backend.admitted() >= s.next_at);
        if due {
            self.take_sample();
        }
    }

    /// Takes the armed sample: barrier, record, re-arm. On barrier
    /// failure the error is parked and the sampler disabled (don't
    /// repeat the failure).
    fn take_sample(&mut self) {
        match self.backend.barrier() {
            Ok(snap) => {
                let admitted = self.backend.admitted();
                let s = self.sampler.as_mut().expect("sampler armed by caller");
                s.series.record(snap);
                s.next_at = admitted + s.period;
            }
            Err(e) => {
                self.deferred.get_or_insert(e);
                self.sampler = None;
            }
        }
    }

    /// Feeds a whole block of transactions, in stream order.
    ///
    /// Bit-identical to calling [`feed`](Self::feed) once per
    /// transaction: when the sampling stage is armed, the block is fed
    /// in sub-slices sized to the next sample position (admitted count
    /// grows by at most one per transaction, so every sample lands at
    /// exactly the position the per-transaction path would have picked).
    /// Without a sampler the whole block goes to the backend in one
    /// dispatch.
    pub fn feed_block(&mut self, txns: &[Transaction]) {
        let mut rest = txns;
        while !rest.is_empty() {
            let Some(next_at) = self.sampler.as_ref().map(|s| s.next_at) else {
                self.backend.feed_block(rest);
                return;
            };
            let admitted = self.backend.admitted();
            if admitted >= next_at {
                self.take_sample();
                continue;
            }
            let need = usize::try_from(next_at - admitted).unwrap_or(usize::MAX);
            let k = need.min(rest.len());
            self.backend.feed_block(&rest[..k]);
            rest = &rest[k..];
            if self.backend.admitted() >= next_at {
                self.take_sample();
            }
        }
    }

    /// Feeds an already-pooled block, handing the buffer itself to the
    /// backend when no sampling stage needs to split it (the zero-copy
    /// fast path).
    pub fn feed_pooled(&mut self, block: PooledBlock) {
        if self.sampler.is_some() {
            self.feed_block(block.as_slice());
        } else {
            self.backend.feed_pooled(block);
        }
    }

    /// Whether any stage needs per-unit [`end_unit`](Self::end_unit)
    /// boundaries (the windowed profiler does). Sources that can batch
    /// check this to decide between the block path and the exact
    /// per-unit path.
    pub fn wants_unit_boundaries(&self) -> bool {
        self.profiler.is_some()
    }

    /// Marks the end of one source unit (a workload reference, a trace
    /// record) at the given bus cycle, then runs the profiling stage.
    pub fn end_unit(&mut self, cycle: u64) {
        self.units += 1;
        let due = self
            .profiler
            .as_ref()
            .is_some_and(|p| self.units >= p.next_at);
        if due {
            match self.backend.barrier() {
                Ok(snap) => {
                    let p = self.profiler.as_mut().expect("profiler checked above");
                    p.record(self.units, cycle, &snap);
                }
                Err(e) => {
                    self.deferred.get_or_insert(e);
                    self.profiler = None;
                }
            }
        }
    }

    /// Source units fed so far.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// Tears the backend down and collects everything, folding in the
    /// statistics the source gathered on its side.
    ///
    /// # Errors
    ///
    /// Surfaces any barrier error parked during the run, then any
    /// backend teardown error.
    pub fn finish(self, stats: SourceStats) -> Result<PipelineRun, Error> {
        if let Some(e) = self.deferred {
            return Err(e);
        }
        let (board, mut telemetry) = self.backend.finish()?;
        if let Some(p) = stats.producer {
            // In a pipelined run the *source* is the producer stage: its
            // queue stalls take the producer_stalls slot, and the
            // engine's own worker-queue backpressure (what the feed loop
            // would have absorbed in an alternating run) moves to
            // consumer_stalls.
            telemetry.consumer_stalls = telemetry.producer_stalls;
            telemetry.producer_stalls = p.stalls;
            telemetry.producer_blocks = p.blocks;
            telemetry.pool_hits += p.pool.hits;
            telemetry.pool_allocs += p.pool.fresh;
        }
        Ok(PipelineRun {
            node_stats: (0..board.node_count())
                .map(|i| board.node_stats(NodeId::new(i as u8)))
                .collect(),
            retries_posted: board.retries_posted(),
            profile: self.profiler.map(|p| p.points).unwrap_or_default(),
            series: self.sampler.map(|s| s.series).unwrap_or_default(),
            telemetry,
            units: stats.units.max(self.units),
            machine: stats.machine,
            bus: stats.bus,
            board,
        })
    }
}

/// A producer of one bus-transaction stream — the other half of the
/// pipeline.
///
/// `drive` consumes the whole stream, pushing every transaction through
/// [`Pipeline::feed`] and closing each source unit with
/// [`Pipeline::end_unit`], then returns the pipeline together with the
/// source's own statistics. Sources are single-shot.
pub trait TransactionSource {
    /// Drives the entire stream through `pipeline`.
    ///
    /// # Errors
    ///
    /// Source-specific: host construction failures, trace decoding
    /// errors, or [`PipelineError::SourceExhausted`] on reuse.
    fn drive(&mut self, pipeline: Pipeline) -> Result<(Pipeline, SourceStats), Error>;
}

/// Adapts the pipeline to the bus-listener interface for live runs:
/// every transaction is fed through the stages; the reaction is always
/// `Proceed` (buffered backends cannot retry the live bus — healthy runs
/// post zero retries, and the retry *count* stays exact either way).
struct PipelineFeed(Shared<Pipeline>);

impl BusListener for PipelineFeed {
    fn on_transaction(&mut self, txn: &Transaction) -> ListenerReaction {
        self.0.with_mut(|p| p.feed(txn));
        ListenerReaction::Proceed
    }

    fn on_block(&mut self, block: &TransactionBlock) -> ListenerReaction {
        self.0.with_mut(|p| p.feed_block(block.as_slice()));
        ListenerReaction::Proceed
    }
}

/// A live source: builds the host machine, snoops its bus into the
/// pipeline, and pumps `refs` workload references through it (plus any
/// interleaved instruction ticks and DMA the workload emits). One
/// source unit = one memory reference, closed at the bus cycle the
/// reference completed on — exactly the windowing the classic profiled
/// runner used.
pub struct LiveSource<'w> {
    host: HostConfig,
    workload: &'w mut dyn Workload,
    refs: u64,
}

impl<'w> LiveSource<'w> {
    /// Block capacity for batched bus delivery on unprofiled runs.
    pub const BLOCK_CAPACITY: usize = 4096;

    /// A source driving `refs` references of `workload` through a host
    /// built from `host`.
    pub fn new(host: HostConfig, workload: &'w mut dyn Workload, refs: u64) -> Self {
        LiveSource {
            host,
            workload,
            refs,
        }
    }
}

impl fmt::Debug for LiveSource<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveSource")
            .field("host", &self.host)
            .field("refs", &self.refs)
            .finish()
    }
}

impl TransactionSource for LiveSource<'_> {
    fn drive(&mut self, pipeline: Pipeline) -> Result<(Pipeline, SourceStats), Error> {
        let mut machine = HostMachine::new(self.host.clone()).map_err(Error::host)?;
        // The windowed profiler needs an end_unit barrier after every
        // reference, so a profiled run keeps per-transaction delivery;
        // everything else takes the batched block path.
        let batched = !pipeline.wants_unit_boundaries();
        let shared = Shared::new(pipeline);
        machine.attach_listener(Box::new(PipelineFeed(shared.handle())));
        if batched {
            machine.deliver_batched(BlockPool::new(Self::BLOCK_CAPACITY));
        }

        let mut done: u64 = 0;
        while done < self.refs {
            match self.workload.next_event() {
                WorkloadEvent::Ref(r) => {
                    let kind = match r.kind {
                        RefKind::Load => AccessKind::Load,
                        RefKind::Store => AccessKind::Store,
                    };
                    machine.access(r.cpu, kind, r.addr);
                    done += 1;
                    if !batched {
                        let cycle = machine.bus().current_cycle();
                        shared.with_mut(|p| p.end_unit(cycle));
                    }
                }
                WorkloadEvent::Instructions { cpu, count } => {
                    machine.tick_instructions(cpu, count);
                }
                WorkloadEvent::Dma { write, addr } => {
                    if write {
                        machine.dma_write(addr);
                    } else {
                        machine.dma_read(addr);
                    }
                }
            }
        }

        let machine_stats = machine.stats();
        let bus = machine.bus().stats().clone();
        drop(machine.detach_listeners());
        let pipeline = shared
            .try_unwrap()
            .map_err(|_| ())
            .expect("source holds the last pipeline handle after detaching listeners");
        Ok((
            pipeline,
            SourceStats {
                units: done,
                machine: Some(machine_stats),
                bus: Some(bus),
                ..SourceStats::default()
            },
        ))
    }
}

/// How a pipelined producer hands blocks to the consumer loop.
struct BlockShipper {
    pool: BlockPool,
    block: PooledBlock,
    tx: SyncSender<PooledBlock>,
    blocks: u64,
    stalls: u64,
    /// Set when the consumer side dropped its receiver (it panicked or
    /// bailed); the producer stops generating as soon as it notices.
    disconnected: bool,
}

impl BlockShipper {
    fn ship(&mut self, full: PooledBlock) {
        self.blocks += 1;
        match self.tx.try_send(full) {
            Ok(()) => {}
            Err(TrySendError::Full(b)) => {
                self.stalls += 1;
                if self.tx.send(b).is_err() {
                    self.disconnected = true;
                }
            }
            Err(TrySendError::Disconnected(_)) => self.disconnected = true,
        }
    }

    fn flush(&mut self) {
        if !self.block.is_empty() {
            let partial = std::mem::replace(&mut self.block, self.pool.take());
            self.ship(partial);
        }
    }
}

impl BusListener for BlockShipper {
    fn on_transaction(&mut self, txn: &Transaction) -> ListenerReaction {
        self.block.push(*txn);
        if self.block.is_full() {
            let full = std::mem::replace(&mut self.block, self.pool.take());
            self.ship(full);
        }
        ListenerReaction::Proceed
    }
}

/// What the producer thread hands back when it drains.
struct ProducerSide {
    units: u64,
    machine: MachineStats,
    bus: BusStats,
    stats: ProducerStats,
}

/// A live source with its own producer stage: host MESI simulation runs
/// on a dedicated thread, filling pooled transaction blocks and shipping
/// them over a bounded queue, while the calling thread drains the queue
/// into the pipeline. Host simulation and board emulation overlap
/// instead of alternating, and the handoff is whole blocks — the
/// software analogue of the board snooping the bus in real time while
/// the host runs ahead (§2.1).
///
/// Results are bit-identical to [`LiveSource`]: the stream order is
/// fixed by the producer, and the pipeline is batch-size-invariant.
/// Profiled runs (which need per-reference unit boundaries) are not
/// supported — drive them through [`LiveSource`].
pub struct PipelinedLiveSource<'w> {
    host: HostConfig,
    workload: &'w mut (dyn Workload + Send),
    refs: u64,
    queue_depth: usize,
    block_capacity: usize,
}

impl<'w> PipelinedLiveSource<'w> {
    /// Bounded block-queue depth between producer and consumer.
    pub const DEFAULT_QUEUE_DEPTH: usize = 4;

    /// Transactions per shipped block.
    pub const DEFAULT_BLOCK_CAPACITY: usize = 4096;

    /// A pipelined source driving `refs` references of `workload`
    /// through a host built from `host`.
    pub fn new(host: HostConfig, workload: &'w mut (dyn Workload + Send), refs: u64) -> Self {
        PipelinedLiveSource {
            host,
            workload,
            refs,
            queue_depth: Self::DEFAULT_QUEUE_DEPTH,
            block_capacity: Self::DEFAULT_BLOCK_CAPACITY,
        }
    }

    /// Overrides the block-queue depth (0 is treated as 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Overrides the shipped-block capacity (0 is treated as 1).
    #[must_use]
    pub fn with_block_capacity(mut self, capacity: usize) -> Self {
        self.block_capacity = capacity.max(1);
        self
    }
}

impl fmt::Debug for PipelinedLiveSource<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelinedLiveSource")
            .field("host", &self.host)
            .field("refs", &self.refs)
            .field("queue_depth", &self.queue_depth)
            .field("block_capacity", &self.block_capacity)
            .finish()
    }
}

impl TransactionSource for PipelinedLiveSource<'_> {
    fn drive(&mut self, mut pipeline: Pipeline) -> Result<(Pipeline, SourceStats), Error> {
        let host = self.host.clone();
        let refs = self.refs;
        let pool = BlockPool::new(self.block_capacity);
        let (tx, rx) = sync_channel::<PooledBlock>(self.queue_depth);
        let workload = &mut *self.workload;

        let produced = std::thread::scope(|scope| {
            // Own the receiver inside the scope: if the consumer loop
            // panics, unwinding drops it, the producer's next send
            // fails, and the scope can join the producer instead of
            // deadlocking on a full queue.
            let rx = rx;
            let producer = scope.spawn(move || -> Result<ProducerSide, Error> {
                let mut machine = HostMachine::new(host).map_err(Error::host)?;
                let shipper = Shared::new(BlockShipper {
                    block: pool.take(),
                    pool: pool.clone(),
                    tx,
                    blocks: 0,
                    stalls: 0,
                    disconnected: false,
                });
                machine.attach_listener(Box::new(shipper.handle()));

                let mut done: u64 = 0;
                while done < refs && !shipper.with(|s| s.disconnected) {
                    match workload.next_event() {
                        WorkloadEvent::Ref(r) => {
                            let kind = match r.kind {
                                RefKind::Load => AccessKind::Load,
                                RefKind::Store => AccessKind::Store,
                            };
                            machine.access(r.cpu, kind, r.addr);
                            done += 1;
                        }
                        WorkloadEvent::Instructions { cpu, count } => {
                            machine.tick_instructions(cpu, count);
                        }
                        WorkloadEvent::Dma { write, addr } => {
                            if write {
                                machine.dma_write(addr);
                            } else {
                                machine.dma_read(addr);
                            }
                        }
                    }
                }

                let machine_stats = machine.stats();
                let bus = machine.bus().stats().clone();
                drop(machine.detach_listeners());
                let mut shipper = shipper
                    .try_unwrap()
                    .map_err(|_| ())
                    .expect("producer holds the last shipper handle after detaching");
                shipper.flush();
                let stats = ProducerStats {
                    blocks: shipper.blocks,
                    stalls: shipper.stalls,
                    pool: pool.stats(),
                };
                // Dropping the shipper here drops the sender; the
                // consumer's recv loop then ends cleanly.
                Ok(ProducerSide {
                    units: done,
                    machine: machine_stats,
                    bus,
                    stats,
                })
            });

            while let Ok(block) = rx.recv() {
                pipeline.feed_pooled(block);
            }
            producer.join()
        });

        let side = produced.unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;
        Ok((
            pipeline,
            SourceStats {
                units: side.units,
                machine: Some(side.machine),
                bus: Some(side.bus),
                producer: Some(side.stats),
            },
        ))
    }
}

/// An offline trace source over any record iterator, re-timed at
/// `cycle_spacing` bus cycles per record (60 ≈ the paper's 20%
/// utilization point). One source unit = one record.
#[derive(Debug)]
pub struct TraceSource<I> {
    records: Option<I>,
    cycle_spacing: u64,
}

impl<I> TraceSource<I> {
    /// A source replaying `records` at `cycle_spacing` cycles apart.
    pub fn new(records: I, cycle_spacing: u64) -> Self {
        TraceSource {
            records: Some(records),
            cycle_spacing,
        }
    }
}

impl<I, E> TransactionSource for TraceSource<I>
where
    I: IntoIterator<Item = Result<TraceRecord, E>>,
    E: Into<Error>,
{
    fn drive(&mut self, mut pipeline: Pipeline) -> Result<(Pipeline, SourceStats), Error> {
        let records = self.records.take().ok_or(PipelineError::SourceExhausted)?;
        let mut n = 0u64;
        for rec in records {
            let rec = rec.map_err(Into::into)?;
            let cycle = n * self.cycle_spacing;
            pipeline.feed(&rec.to_transaction(n, cycle));
            pipeline.end_unit(cycle);
            n += 1;
        }
        Ok((
            pipeline,
            SourceStats {
                units: n,
                ..SourceStats::default()
            },
        ))
    }
}

/// A *streaming* trace source: decodes records straight off a byte
/// reader in fixed-size chunks via [`TraceReader::read_chunk`], so the
/// whole-trace `Vec<TraceRecord>` never exists. Peak memory is
/// O(chunk) no matter how long the trace is — the software face of the
/// board's billion-reference trace memory (§2.3).
#[derive(Debug)]
pub struct ChunkedTraceSource<R: Read> {
    reader: Option<TraceReader<R>>,
    cycle_spacing: u64,
    chunk: usize,
}

impl<R: Read> ChunkedTraceSource<R> {
    /// Records decoded per chunk by default.
    pub const DEFAULT_CHUNK: usize = 4096;

    /// Opens `reader` as a trace (validating the header) and prepares to
    /// stream it at `cycle_spacing` cycles per record.
    ///
    /// # Errors
    ///
    /// Propagates header validation failures (bad magic, unsupported
    /// version, short file).
    pub fn new(reader: R, cycle_spacing: u64) -> Result<Self, Error> {
        Ok(ChunkedTraceSource {
            reader: Some(TraceReader::new(reader)?),
            cycle_spacing,
            chunk: Self::DEFAULT_CHUNK,
        })
    }

    /// Overrides the chunk size (records per read; 0 is treated as 1).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }
}

impl<R: Read> TransactionSource for ChunkedTraceSource<R> {
    fn drive(&mut self, mut pipeline: Pipeline) -> Result<(Pipeline, SourceStats), Error> {
        let mut reader = self.reader.take().ok_or(PipelineError::SourceExhausted)?;
        let mut n = 0u64;
        if pipeline.wants_unit_boundaries() {
            // Profiled replay: the windowed profiler needs an end_unit
            // boundary after every record, so decode and feed per record.
            let mut buf = Vec::new();
            loop {
                let got = reader.read_chunk(&mut buf, self.chunk)?;
                if got == 0 {
                    break;
                }
                for rec in &buf {
                    let cycle = n * self.cycle_spacing;
                    pipeline.feed(&rec.to_transaction(n, cycle));
                    pipeline.end_unit(cycle);
                    n += 1;
                }
            }
        } else {
            // Block-native replay: decode straight into pooled blocks
            // and hand each buffer to the pipeline whole. Numbering and
            // timing are identical to the per-record path.
            let pool = BlockPool::new(self.chunk);
            loop {
                let mut block = pool.take();
                let got = reader.read_block(&mut block, n, self.cycle_spacing)?;
                if got == 0 {
                    break;
                }
                n += got as u64;
                pipeline.feed_pooled(block);
            }
        }
        Ok((
            pipeline,
            SourceStats {
                units: n,
                ..SourceStats::default()
            },
        ))
    }
}

/// A raw transaction stream — synthetic generators, captured
/// [`Transaction`] vectors, anything already in bus form. Transactions
/// are fed exactly as given (sequence numbers and cycles included); one
/// source unit = one transaction, closed at the transaction's own cycle.
#[derive(Debug)]
pub struct StreamSource<I> {
    txns: Option<I>,
}

impl<I> StreamSource<I> {
    /// A source feeding `txns` verbatim.
    pub fn new(txns: I) -> Self {
        StreamSource { txns: Some(txns) }
    }
}

impl<I: IntoIterator<Item = Transaction>> TransactionSource for StreamSource<I> {
    fn drive(&mut self, mut pipeline: Pipeline) -> Result<(Pipeline, SourceStats), Error> {
        let txns = self.txns.take().ok_or(PipelineError::SourceExhausted)?;
        let mut n = 0u64;
        for txn in txns {
            pipeline.feed(&txn);
            pipeline.end_unit(txn.cycle);
            n += 1;
        }
        Ok((
            pipeline,
            SourceStats {
                units: n,
                ..SourceStats::default()
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memories::{BoardConfig, CacheParams};
    use memories_bus::{Address, BusOp, ProcId, SnoopResponse};
    use memories_sim::{EmulationEngine, EngineConfig};
    use memories_trace::TraceWriter;

    fn board() -> MemoriesBoard {
        let params = CacheParams::builder()
            .capacity(16 << 10)
            .ways(2)
            .line_size(128)
            .allow_scaled_down()
            .build()
            .unwrap();
        let cfg =
            BoardConfig::parallel_configs(vec![params, params], (0..4).map(ProcId::new).collect())
                .unwrap();
        MemoriesBoard::new(cfg).unwrap()
    }

    fn txn(i: u64) -> Transaction {
        Transaction::new(
            i,
            i * 60,
            ProcId::new((i % 4) as u8),
            if i.is_multiple_of(3) {
                BusOp::Rwitm
            } else {
                BusOp::Read
            },
            Address::new((i % 64) * 128),
            SnoopResponse::Null,
        )
    }

    fn backend(shards: usize) -> Box<dyn ExecutionBackend> {
        let cfg = if shards <= 1 {
            EngineConfig::serial()
        } else {
            EngineConfig::parallel(shards).with_batch(128)
        };
        Box::new(EmulationEngine::new(board(), cfg))
    }

    /// Profiling and sampling stages run through barriers, so a pipeline
    /// with both stages stays bit-identical to a bare serial board at
    /// any parallelism.
    #[test]
    fn observed_pipelines_stay_bit_identical_at_any_parallelism() {
        let mut reference = board();
        for i in 0..3_000 {
            use memories_bus::BusListener as _;
            reference.on_transaction(&txn(i));
        }

        let options = ExecutionOptions::new()
            .window_refs(500)
            .sample_every(Some(700));
        let mut runs = Vec::new();
        for shards in [1, 2] {
            let mut source = StreamSource::new((0..3_000).map(txn));
            let pipeline = Pipeline::new(backend(shards), &options);
            let (pipeline, stats) = source.drive(pipeline).unwrap();
            let run = pipeline.finish(stats).unwrap();
            assert_eq!(
                run.board.statistics_report(),
                reference.statistics_report(),
                "{shards}-shard pipeline diverged"
            );
            assert_eq!(run.units, 3_000);
            assert_eq!(run.profile.len(), 6);
            assert_eq!(run.profile.last().unwrap().end_ref, 3_000);
            assert!(!run.series.is_empty());
            runs.push(run);
        }
        // The observations themselves are identical across parallelism.
        assert_eq!(runs[0].profile, runs[1].profile);
        assert_eq!(runs[0].series.len(), runs[1].series.len());
        for (a, b) in runs[0].series.points().iter().zip(runs[1].series.points()) {
            assert_eq!(a.cumulative, b.cumulative);
        }
    }

    /// Chunked streaming replay is record-for-record identical to the
    /// buffered iterator source.
    #[test]
    fn chunked_source_matches_buffered_source() {
        let records: Vec<TraceRecord> = (0..1_500)
            .map(|i| TraceRecord::from_transaction(&txn(i)))
            .collect();
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();

        let mut buffered = TraceSource::new(records.into_iter().map(Ok::<_, Error>), 60);
        let (p, stats) = buffered
            .drive(Pipeline::new(backend(1), &ExecutionOptions::new()))
            .unwrap();
        let want = p.finish(stats).unwrap();

        let mut streamed = ChunkedTraceSource::new(bytes.as_slice(), 60)
            .unwrap()
            .with_chunk(64);
        let (p, stats) = streamed
            .drive(Pipeline::new(backend(2), &ExecutionOptions::new()))
            .unwrap();
        let got = p.finish(stats).unwrap();

        assert_eq!(want.units, 1_500);
        assert_eq!(got.units, 1_500);
        assert_eq!(
            want.board.statistics_report(),
            got.board.statistics_report()
        );

        // Single-shot: a second drive reports exhaustion, not silence.
        let err = streamed
            .drive(Pipeline::new(backend(1), &ExecutionOptions::new()))
            .unwrap_err();
        assert!(err.to_string().contains("single-shot"), "{err}");
    }
}
