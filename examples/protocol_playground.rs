//! Protocol playground: load different coherence protocols into
//! different node controllers and compare them on the same traffic —
//! "different state table files could be loaded to different node
//! controller FPGAs to experiment with different coherence protocols
//! during the same measurement" (§3.2).
//!
//! Two comparisons in two runs:
//!  1. MESI vs. MOESI, each emulating a two-node target machine, on
//!     write-shared FMM traffic — MOESI's Owned state eliminates the
//!     memory write-backs that MESI pays on every remote read of dirty
//!     data.
//!  2. Write-through vs. a custom no-write-allocate protocol (defined
//!     inline in the map-file format) on OLTP traffic.
//!
//! Run with: `cargo run --release --example protocol_playground`

use memories::{BoardConfig, CacheParams, NodeCounter, NodeSlot, NodeStats};
use memories_bus::ProcId;
use memories_console::report::Table;
use memories_console::EmulationSession;
use memories_host::HostConfig;
use memories_protocol::{standard, ProtocolTable};
use memories_workloads::splash::Fmm;
use memories_workloads::{OltpConfig, OltpWorkload};

/// A custom protocol: reads allocate, writes bypass the cache entirely
/// (no write-allocate). Useful for streaming-store-heavy workloads.
const NO_WRITE_ALLOCATE: &str = "\
protocol no-write-allocate
states I V M

on local-read    I *  -> V allocate
on local-read    V *  -> V
on local-read    M *  -> M
# Write misses do NOT allocate; write hits mark dirty.
on local-write   I *  -> I
on local-write   V *  -> M
on local-write   M *  -> M
on local-upgrade I *  -> I
on local-upgrade V *  -> M
on local-upgrade M *  -> M
on local-castout I *  -> I
on local-castout V *  -> M
on local-castout M *  -> M
on remote-read   I *  -> I
on remote-read   V *  -> V intervene-shared
on remote-read   M *  -> V intervene-modified writeback
on remote-write  I *  -> I
on remote-write  V *  -> I
on remote-write  M *  -> I intervene-modified
on io-read       * *  -> same
on io-write      * *  -> I
on flush         M *  -> I writeback
on flush         V *  -> I
on flush         I *  -> I
";

fn host() -> Result<HostConfig, memories_bus::GeometryError> {
    Ok(HostConfig {
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(128 << 10, 4, 128)?,
        ..HostConfig::s7a()
    })
}

/// Sums a statistic over a domain's two nodes.
fn domain_sum(stats: &[NodeStats], nodes: [usize; 2], f: impl Fn(&NodeStats) -> u64) -> u64 {
    nodes.iter().map(|&n| f(&stats[n])).sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CacheParams::builder().capacity(8 << 20).ways(4).build()?;

    // --- Part 1: MESI vs MOESI as two-node target machines -------------
    let half_a: Vec<ProcId> = (0..4).map(ProcId::new).collect();
    let half_b: Vec<ProcId> = (4..8).map(ProcId::new).collect();
    let slots = vec![
        NodeSlot::new(params, half_a.iter().copied()).in_domain(0),
        NodeSlot::new(params, half_b.iter().copied()).in_domain(0),
        NodeSlot::new(params, half_a.iter().copied())
            .with_protocol(standard::moesi())
            .in_domain(1),
        NodeSlot::new(params, half_b.iter().copied())
            .with_protocol(standard::moesi())
            .in_domain(1),
    ];
    let board = BoardConfig::from_slots(slots)?;
    let mut fmm = Fmm::scaled(8, 1 << 16, 7);
    // The MESI pair and the MOESI pair are separate coherence domains,
    // so the comparison can snoop on two shards.
    let result = EmulationSession::builder()
        .host(host()?)
        .board(board)
        .parallelism(2)
        .build()?
        .run(&mut fmm, 500_000)?;
    let s = &result.node_stats;

    let mut t = Table::new([
        "protocol",
        "miss ratio",
        "interventions",
        "protocol writebacks",
    ])
    .with_title("Part 1: MESI vs MOESI, two emulated nodes each, FMM traffic");
    for (label, nodes) in [("mesi", [0usize, 1]), ("moesi", [2, 3])] {
        let refs = domain_sum(s, nodes, |n| n.demand_references());
        let misses = domain_sum(s, nodes, |n| n.demand_misses());
        t.row([
            label.to_string(),
            format!("{:.4}", misses as f64 / refs.max(1) as f64),
            domain_sum(s, nodes, |n| {
                n.interventions_shared() + n.interventions_modified()
            })
            .to_string(),
            domain_sum(s, nodes, |n| {
                n.counters().get(NodeCounter::ProtocolWritebacks)
            })
            .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "MOESI's Owned state supplies remote readers without updating memory,\n\
         so its protocol write-backs drop while interventions stay put.\n"
    );

    // --- Part 2: write-through vs a custom no-write-allocate table -----
    let custom = ProtocolTable::parse_map_file(NO_WRITE_ALLOCATE)?;
    let slots = vec![
        NodeSlot::new(params, (0..8).map(ProcId::new))
            .with_protocol(standard::write_through())
            .in_domain(0),
        NodeSlot::new(params, (0..8).map(ProcId::new))
            .with_protocol(custom)
            .in_domain(1),
    ];
    let board = BoardConfig::from_slots(slots)?;
    let mut oltp = OltpWorkload::new(OltpConfig::scaled_default());
    let result = EmulationSession::builder()
        .host(host()?)
        .board(board)
        .parallelism(2)
        .build()?
        .run(&mut oltp, 400_000)?;

    let mut t = Table::new(["protocol", "miss ratio", "protocol writebacks"])
        .with_title("Part 2: write-through vs custom no-write-allocate, OLTP traffic");
    for (i, label) in ["write-through", "no-write-allocate"].iter().enumerate() {
        let stats = &result.node_stats[i];
        t.row([
            (*label).to_string(),
            format!("{:.4}", stats.miss_ratio()),
            stats
                .counters()
                .get(NodeCounter::ProtocolWritebacks)
                .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "the custom table came from an inline map file: `{}`",
        result.board.node(memories_bus::NodeId::new(1)).protocol()
    );
    Ok(())
}
