//! Quickstart: emulate a 16 MB L3 behind a live OLTP workload.
//!
//! The MemorIES flow in five steps: configure an emulated cache, build a
//! host machine, attach the board to its bus, run a workload in
//! "real time", and extract statistics — no slowdown of the host
//! (the board only listens).
//!
//! Run with: `cargo run --release --example quickstart`

use memories::CacheParams;
use memories_console::EmulationSession;
use memories_host::HostConfig;
use memories_workloads::{OltpConfig, OltpWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The emulated cache: 16 MB, 8-way, 128 B lines, MESI, shared by
    //    all eight processors (Figure 3's single-node L3 emulation).
    let params = CacheParams::builder()
        .capacity(16 << 20)
        .ways(8)
        .line_size(128)
        .build()?;

    // 2. The host: an S7A-like 8-way SMP (scaled L2s so the bus sees
    //    interesting traffic at this workload size).
    let host = HostConfig {
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(256 << 10, 4, 128)?,
        ..HostConfig::s7a()
    };

    // 3+4. One session programs the board, attaches it to the host's
    //    bus, and runs a TPC-C-like workload.
    let mut workload = OltpWorkload::new(OltpConfig::scaled_default());
    let session = EmulationSession::builder()
        .host(host)
        .node(params)
        .build()?;
    let result = session.run(&mut workload, 500_000)?;

    // 5. Read the counters, like the console software would.
    let stats = &result.node_stats[0];
    println!("host: {}", result.machine);
    println!();
    println!(
        "emulated 16MB L3 ({} demand refs):",
        stats.demand_references()
    );
    println!("  miss ratio:    {:.4}", stats.miss_ratio());
    println!("  cold fraction: {:.2}%", stats.cold_fraction() * 100.0);
    println!(
        "  bus utilization: {:.2}%",
        result.bus.utilization() * 100.0
    );
    println!("  retries posted by the board: {}", result.retries_posted);
    println!();
    println!("raw counters:");
    print!("{}", stats.counters());
    Ok(())
}
