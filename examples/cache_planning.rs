//! Cache planning: the board's day job at IBM — pick the L3 for the next
//! server generation by sweeping configurations against a live
//! commercial workload.
//!
//! Uses the Figure 4 mode (four parallel configurations per run) to
//! evaluate twelve L3 candidates — three associativities at four sizes —
//! in three runs over identical TPC-C-like traffic.
//!
//! Run with: `cargo run --release --example cache_planning`

use memories::{BoardConfig, CacheParams, ReplacementPolicy};
use memories_bus::ProcId;
use memories_console::report::{bytes, Table};
use memories_console::EmulationSession;
use memories_host::HostConfig;
use memories_workloads::{OltpConfig, OltpWorkload};

fn candidate(capacity: u64, ways: u32) -> Result<CacheParams, memories::ParamError> {
    CacheParams::builder()
        .capacity(capacity)
        .ways(ways)
        .line_size(128)
        .replacement(ReplacementPolicy::Lru)
        .allow_scaled_down()
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes: [u64; 4] = [2 << 20, 8 << 20, 32 << 20, 128 << 20];
    let ways_options: [u32; 3] = [1, 4, 8];
    const REFS: u64 = 400_000;

    let host = HostConfig {
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(256 << 10, 4, 128)?,
        ..HostConfig::s7a()
    };

    let mut table = Table::new(["L3 size", "direct mapped", "4-way", "8-way"])
        .with_title("TPC-C L3 miss ratio by candidate configuration");

    // One run per associativity, four sizes in parallel per run.
    let mut results = vec![vec![0.0f64; sizes.len()]; ways_options.len()];
    for (wi, &ways) in ways_options.iter().enumerate() {
        let configs: Result<Vec<_>, _> = sizes.iter().map(|&s| candidate(s, ways)).collect();
        let board = BoardConfig::parallel_configs(configs?, (0..8).map(ProcId::new).collect())?;
        let mut workload = OltpWorkload::new(OltpConfig::scaled_default());
        // The four sizes are independent coherence domains — snoop them
        // on four shards.
        let result = EmulationSession::builder()
            .host(host.clone())
            .board(board)
            .parallelism(sizes.len())
            .build()?
            .run(&mut workload, REFS)?;
        for (si, stats) in result.node_stats.iter().enumerate() {
            results[wi][si] = stats.miss_ratio();
        }
    }

    for (si, &size) in sizes.iter().enumerate() {
        table.row([
            bytes(size),
            format!("{:.4}", results[0][si]),
            format!("{:.4}", results[1][si]),
            format!("{:.4}", results[2][si]),
        ]);
    }
    println!("{}", table.render());

    // The planner's read-out: where does extra capacity stop paying?
    for wi in 0..ways_options.len() {
        for si in 1..sizes.len() {
            let gain = results[wi][si - 1] - results[wi][si];
            if gain < 0.01 {
                println!(
                    "{}-way: diminishing returns beyond {} ({:.4} -> {:.4})",
                    ways_options[wi],
                    bytes(sizes[si - 1]),
                    results[wi][si - 1],
                    results[wi][si],
                );
                break;
            }
        }
    }
    Ok(())
}
