//! Alternate firmware tour: hot-spot identification and trace capture
//! (§2.3), plus offline replay through the reference simulator.
//!
//! Three listeners ride the same bus at once — the board, a page-level
//! hot-spot profiler, and a trace capture — exactly like reprogramming
//! the FPGAs for different jobs. The captured trace then replays through
//! the trace-driven reference simulator, which must agree with the live
//! board *exactly* (the paper's validation methodology, §4.1).
//!
//! Run with: `cargo run --release --example hotspot_and_trace`

use memories::{
    BoardConfig, CacheParams, Granularity, HotSpotProfiler, MemoriesBoard, TraceCapture,
};
use memories_bus::ProcId;
use memories_console::Shared;
use memories_host::{AccessKind, HostConfig, HostMachine};
use memories_protocol::standard;
use memories_sim::{compare_counts, CacheSim};
use memories_trace::TraceReader;
use memories_workloads::{OltpConfig, OltpWorkload, RefKind, Workload, WorkloadEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const REFS: u64 = 200_000;
    let params = CacheParams::builder().capacity(8 << 20).ways(4).build()?;

    let host = HostConfig {
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(128 << 10, 4, 128)?,
        ..HostConfig::s7a()
    };
    let mut machine = HostMachine::new(host)?;

    let board = Shared::new(MemoriesBoard::new(BoardConfig::single_node(
        params,
        (0..8).map(ProcId::new),
    )?)?);
    let profiler = Shared::new(HotSpotProfiler::new(
        Granularity::Page { page_size: 4096 },
        1 << 20,
    ));
    let capture = Shared::new(TraceCapture::new(2_000_000));

    machine.attach_listener(Box::new(board.handle()));
    machine.attach_listener(Box::new(profiler.handle()));
    machine.attach_listener(Box::new(capture.handle()));

    let mut workload = OltpWorkload::new(OltpConfig::scaled_default());
    let mut done = 0;
    while done < REFS {
        match workload.next_event() {
            WorkloadEvent::Ref(r) => {
                let kind = match r.kind {
                    RefKind::Load => AccessKind::Load,
                    RefKind::Store => AccessKind::Store,
                };
                machine.access(r.cpu, kind, r.addr);
                done += 1;
            }
            WorkloadEvent::Instructions { cpu, count } => machine.tick_instructions(cpu, count),
            WorkloadEvent::Dma { write: true, addr } => machine.dma_write(addr),
            WorkloadEvent::Dma { write: false, addr } => machine.dma_read(addr),
        }
    }
    drop(machine.detach_listeners());

    // Hot-spot report: the OLTP metadata region should glow.
    println!("top 5 hottest pages on the bus:");
    profiler.with(|p| {
        for row in p.top(5) {
            println!(
                "  {}: {} reads, {} writes",
                row.base, row.counts.reads, row.counts.writes
            );
        }
        println!(
            "  ({} pages tracked, {} refs)",
            p.tracked_units(),
            p.total_references()
        );
    });

    // Dump the capture to an in-memory "disk" and replay it offline.
    let mut disk = Vec::new();
    let captured = capture.with(|c| c.dump(&mut disk))?;
    println!(
        "\ncaptured {captured} bus references ({} bytes on disk)",
        disk.len()
    );

    let board_params = board.with(|b| *b.node(memories_bus::NodeId::new(0)).params());
    let mut sim = CacheSim::new(board_params, standard::mesi());
    for rec in TraceReader::new(disk.as_slice())? {
        sim.step(&rec?);
    }

    let report = board.with(|b| {
        compare_counts(
            b.node(memories_bus::NodeId::new(0)).counters(),
            sim.counts(),
        )
    });
    println!("offline replay vs. live board: {report}");
    assert!(
        report.matches(),
        "replay must reproduce the live run exactly"
    );
    Ok(())
}
