//! Monitoring: watch the counters move while a run is in flight.
//!
//! The real console could read the board's statistics mid-run — the
//! FPGAs never stop snooping while the PC polls. This example does the
//! software equivalent: a monitored session samples the full counter
//! snapshot every 32768 admitted bus transactions, then prints the live
//! miss-rate series, the engine's own telemetry, and the machine-
//! readable JSONL export.
//!
//! Run with: `cargo run --release --example monitoring`

use memories::{CacheParams, SdramModel};
use memories_console::EmulationSession;
use memories_obs::export;
use memories_workloads::{OltpConfig, OltpWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8 MB emulated L3 behind an S7A-like host, as in the quickstart —
    // but built with a sampling period, so `run_monitored` records a
    // time series alongside the final result.
    let params = CacheParams::builder()
        .capacity(8 << 20)
        .ways(8)
        .line_size(128)
        .build()?;
    let host = memories_host::HostConfig {
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(256 << 10, 4, 128)?,
        ..memories_host::HostConfig::s7a()
    };
    let session = EmulationSession::builder()
        .host(host)
        .node(params)
        .sample_every(32_768)
        .build()?;

    let mut workload = OltpWorkload::new(OltpConfig {
        journal: None,
        ..OltpConfig::scaled_default()
    });
    let run = session.run_monitored(&mut workload, 500_000)?;

    // The live series: cumulative miss rate converging with trace
    // length, windowed miss rate showing the cold-start regime end.
    println!("sample   admitted   cum miss   window miss   window util");
    for p in run.series.points() {
        println!(
            "{:>6} {:>10} {:>10.4} {:>13.4} {:>13.2}",
            p.index,
            p.cumulative.admitted,
            p.cumulative.miss_rate(),
            p.window.miss_rate(),
            p.window.utilization(),
        );
    }

    // The engine watching itself: throughput, backpressure, and the
    // emulated-vs-wall pace against the Table 3 SDRAM model.
    println!();
    println!("{}", run.telemetry);
    println!(
        "realtime ratio vs Table 3 SDRAM: {:.2}x",
        run.telemetry.realtime_ratio(&SdramModel::table3_default())
    );

    // Final counters are untouched by sampling — same numbers a plain
    // `run` would report.
    let stats = &run.result.node_stats[0];
    println!();
    println!(
        "final: {} demand refs, miss ratio {:.4}, {} retries",
        stats.demand_references(),
        stats.miss_ratio(),
        run.result.retries_posted
    );

    // Machine-readable export for plotting (first two lines shown).
    println!();
    println!("JSONL head:");
    for line in export::jsonl_string(&run.series).lines().take(2) {
        println!("{line}");
    }
    Ok(())
}
