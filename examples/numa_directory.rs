//! NUMA directory emulation (§2.3): sparse-directory coherence over four
//! NUMA nodes, with remote caches — the board's alternate firmware for
//! studying directory sizing.
//!
//! Sweeps the sparse directory's coverage and shows the eviction-
//! invalidation traffic a too-small directory generates.
//!
//! Run with: `cargo run --release --example numa_directory`

use std::cell::RefCell;
use std::rc::Rc;

use memories::numa::{DirectoryParams, NumaConfig, NumaEmulator};
use memories::CacheParams;
use memories_bus::{BusListener, ListenerReaction, ProcId, Transaction};
use memories_console::report::Table;
use memories_host::{AccessKind, HostConfig, HostMachine};
use memories_workloads::{OltpConfig, OltpWorkload, RefKind, Workload, WorkloadEvent};

/// Adapter sharing the emulator between the bus and this example.
struct Tap(Rc<RefCell<NumaEmulator>>);

impl BusListener for Tap {
    fn on_transaction(&mut self, txn: &Transaction) -> ListenerReaction {
        self.0.borrow_mut().on_transaction(txn)
    }
}

fn run_with_directory(dir_sets: usize, refs: u64) -> NumaEmulator {
    let l3 = CacheParams::builder()
        .capacity(4 << 20)
        .ways(4)
        .build()
        .expect("valid l3");
    let remote_cache = CacheParams::builder()
        .capacity(2 << 20)
        .ways(4)
        .build()
        .expect("valid remote cache");
    let mut config = NumaConfig::four_node(
        (0..8).map(ProcId::new),
        l3,
        DirectoryParams {
            sets: dir_sets,
            ways: 8,
            line_size: 128,
        },
    )
    .expect("valid numa config");
    config.remote_cache = Some(remote_cache);

    let host = HostConfig {
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(128 << 10, 4, 128).expect("valid l2"),
        ..HostConfig::s7a()
    };
    let mut machine = HostMachine::new(host).expect("valid host");
    let shared = Rc::new(RefCell::new(
        NumaEmulator::new(config).expect("valid emulator"),
    ));
    machine.attach_listener(Box::new(Tap(Rc::clone(&shared))));

    let mut workload = OltpWorkload::new(OltpConfig::scaled_default());
    let mut done = 0;
    while done < refs {
        match workload.next_event() {
            WorkloadEvent::Ref(r) => {
                let kind = match r.kind {
                    RefKind::Load => AccessKind::Load,
                    RefKind::Store => AccessKind::Store,
                };
                machine.access(r.cpu, kind, r.addr);
                done += 1;
            }
            WorkloadEvent::Instructions { cpu, count } => machine.tick_instructions(cpu, count),
            WorkloadEvent::Dma { write: true, addr } => machine.dma_write(addr),
            WorkloadEvent::Dma { write: false, addr } => machine.dma_read(addr),
        }
    }
    drop(machine.detach_listeners());
    let Ok(cell) = Rc::try_unwrap(shared) else {
        panic!("last handle");
    };
    cell.into_inner()
}

fn main() {
    const REFS: u64 = 300_000;
    let mut t = Table::new([
        "directory entries",
        "remote fraction",
        "dir hit ratio",
        "evictions",
        "eviction invalidations",
        "remote cache hit ratio",
    ])
    .with_title("Sparse directory sizing (4 NUMA nodes, 4KB home striping)");

    for dir_sets in [256usize, 1024, 4096, 16384] {
        let e = run_with_directory(dir_sets, REFS);
        let c = e.counters();
        let dir_total = c.directory_hits + c.directory_misses;
        let rc_total = c.remote_cache_hits + c.remote_cache_misses;
        t.row([
            (dir_sets * 8).to_string(),
            format!("{:.3}", c.remote_fraction()),
            format!("{:.3}", c.directory_hits as f64 / dir_total.max(1) as f64),
            c.directory_evictions.to_string(),
            c.eviction_invalidations.to_string(),
            format!("{:.3}", c.remote_cache_hits as f64 / rc_total.max(1) as f64),
        ]);
    }
    println!("{}", t.render());
    println!("a directory that covers the working set stops evicting — and stops");
    println!("invalidating useful L3 lines (the WEB93 sparse-directory trade-off).");
}
