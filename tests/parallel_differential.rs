//! Differential proof that the sharded parallel engine is bit-identical
//! to serial emulation — the acceptance gate for the parallel snoop path.
//!
//! Two layers:
//!
//! * End-to-end: the same OLTP / DSS / SPLASH2 traffic driven through an
//!   [`EmulationSession`] at 1, 2, 4, and 8 shards must produce the
//!   *identical* full statistics dump (every 40-bit counter of every
//!   node, the global counters, and the retry count).
//! * Property: shard-local [`GlobalCounters`] merged in any grouping
//!   equal the serially observed totals — the merge is a commutative
//!   monoid over disjoint sub-streams.

use memories::{CacheParams, GlobalCounters};
use memories_bus::{Address, BusOp, ProcId, SnoopResponse, Transaction};
use memories_console::{EmulationSession, ExperimentResult};
use memories_host::HostConfig;
use memories_workloads::splash::Fmm;
use memories_workloads::{DssConfig, DssWorkload, OltpConfig, OltpWorkload, Workload};
use proptest::prelude::*;

fn params(capacity: u64) -> CacheParams {
    CacheParams::builder()
        .capacity(capacity)
        .ways(4)
        .line_size(128)
        .allow_scaled_down()
        .build()
        .unwrap()
}

fn host() -> HostConfig {
    HostConfig {
        num_cpus: 8,
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(128 << 10, 4, 128).unwrap(),
        ..HostConfig::s7a()
    }
}

/// A Figure 4 parallel-configuration board: four cache candidates, each
/// its own coherence domain — the shape the sharded engine accelerates.
fn board() -> memories::BoardConfig {
    memories::BoardConfig::parallel_configs(
        vec![
            params(1 << 20),
            params(2 << 20),
            params(4 << 20),
            params(8 << 20),
        ],
        (0..8).map(ProcId::new).collect(),
    )
    .unwrap()
}

fn run(make: &dyn Fn() -> Box<dyn Workload>, shards: usize, refs: u64) -> ExperimentResult {
    let session = EmulationSession::builder()
        .host(host())
        .board(board())
        .parallelism(shards)
        .batch(512)
        .build()
        .unwrap();
    let mut workload = make();
    session.run(&mut *workload, refs).unwrap()
}

fn assert_shards_match_serial(name: &str, make: &dyn Fn() -> Box<dyn Workload>, refs: u64) {
    let serial = run(make, 1, refs);
    assert_eq!(
        serial.retries_posted, 0,
        "{name}: healthy run must not retry"
    );
    for shards in [2usize, 4, 8] {
        let parallel = run(make, shards, refs);
        assert_eq!(
            serial.board.statistics_report(),
            parallel.board.statistics_report(),
            "{name}: {shards}-shard statistics dump diverged from serial"
        );
        assert_eq!(
            serial.retries_posted, parallel.retries_posted,
            "{name}: {shards}-shard retry count diverged"
        );
        for (node, (s, p)) in serial
            .node_stats
            .iter()
            .zip(&parallel.node_stats)
            .enumerate()
        {
            assert_eq!(
                s.counters(),
                p.counters(),
                "{name}: node {node} counters diverged at {shards} shards"
            );
        }
        assert_eq!(serial.bus.transactions, parallel.bus.transactions);
        assert_eq!(
            serial.machine.total_loads() + serial.machine.total_stores(),
            parallel.machine.total_loads() + parallel.machine.total_stores(),
        );
    }
}

#[test]
fn oltp_traffic_is_bit_identical_across_shard_counts() {
    let make: Box<dyn Fn() -> Box<dyn Workload>> = Box::new(|| {
        Box::new(OltpWorkload::new(OltpConfig {
            journal: None,
            ..OltpConfig::scaled_default()
        }))
    });
    assert_shards_match_serial("oltp", &*make, 30_000);
}

#[test]
fn dss_traffic_is_bit_identical_across_shard_counts() {
    let make: Box<dyn Fn() -> Box<dyn Workload>> =
        Box::new(|| Box::new(DssWorkload::new(DssConfig::scaled_default())));
    assert_shards_match_serial("dss", &*make, 30_000);
}

#[test]
fn splash2_traffic_is_bit_identical_across_shard_counts() {
    let make: Box<dyn Fn() -> Box<dyn Workload>> =
        Box::new(|| Box::new(Fmm::scaled(8, 1 << 14, 7)));
    assert_shards_match_serial("splash2-fmm", &*make, 30_000);
}

fn arb_transaction() -> impl Strategy<Value = (u8, u8, u64, u64)> {
    (
        0u8..BusOp::ALL.len() as u8,
        0u8..8,
        0u64..(1u64 << 20),
        1u64..32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard-merged global counters equal serial observation, for any
    /// transaction stream and any number of shard-local counter banks:
    /// dealing the stream round-robin over k banks and merging them
    /// reproduces the serially observed totals exactly.
    #[test]
    fn shard_merged_global_counters_equal_serial_totals(
        raw in prop::collection::vec(arb_transaction(), 1..400),
        k in 1usize..9,
    ) {
        let mut cycle = 0u64;
        let txns: Vec<Transaction> = raw
            .iter()
            .enumerate()
            .map(|(i, &(op, proc, line, gap))| {
                cycle += gap;
                Transaction::new(
                    i as u64,
                    cycle,
                    ProcId::new(proc),
                    BusOp::ALL[op as usize],
                    Address::new(line * 128),
                    SnoopResponse::Null,
                )
            })
            .collect();

        let mut serial = GlobalCounters::default();
        for t in &txns {
            serial.observe(t);
        }

        let mut banks = vec![GlobalCounters::default(); k];
        for (i, t) in txns.iter().enumerate() {
            banks[i % k].observe(t);
        }
        let mut merged = GlobalCounters::default();
        for bank in &banks {
            merged.merge(bank);
        }

        prop_assert_eq!(merged.transactions(), serial.transactions());
        for op in BusOp::ALL {
            prop_assert_eq!(merged.count(op), serial.count(op));
        }
        prop_assert_eq!(
            merged.observed_span_cycles(),
            serial.observed_span_cycles()
        );
    }
}
