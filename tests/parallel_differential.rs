//! Differential proof that the sharded parallel engine is bit-identical
//! to serial emulation — the acceptance gate for the parallel snoop path.
//!
//! Two layers:
//!
//! * End-to-end: the same OLTP / DSS / SPLASH2 traffic driven through an
//!   [`EmulationSession`] at 1, 2, 4, and 8 shards must produce the
//!   *identical* full statistics dump (every 40-bit counter of every
//!   node, the global counters, and the retry count).
//! * Property: shard-local [`GlobalCounters`] merged in any grouping
//!   equal the serially observed totals — the merge is a commutative
//!   monoid over disjoint sub-streams.

use memories::{CacheParams, Counter40, GlobalCounters};
use memories_bus::{Address, BusOp, ProcId, SnoopResponse, Transaction};
use memories_console::{EmulationSession, ExperimentResult, MonitoredRun};
use memories_host::HostConfig;
use memories_obs::export;
use memories_workloads::splash::Fmm;
use memories_workloads::{DssConfig, DssWorkload, OltpConfig, OltpWorkload, Workload};
use proptest::prelude::*;

fn params(capacity: u64) -> CacheParams {
    CacheParams::builder()
        .capacity(capacity)
        .ways(4)
        .line_size(128)
        .allow_scaled_down()
        .build()
        .unwrap()
}

fn host() -> HostConfig {
    HostConfig {
        num_cpus: 8,
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(128 << 10, 4, 128).unwrap(),
        ..HostConfig::s7a()
    }
}

/// A Figure 4 parallel-configuration board: four cache candidates, each
/// its own coherence domain — the shape the sharded engine accelerates.
fn board() -> memories::BoardConfig {
    memories::BoardConfig::parallel_configs(
        vec![
            params(1 << 20),
            params(2 << 20),
            params(4 << 20),
            params(8 << 20),
        ],
        (0..8).map(ProcId::new).collect(),
    )
    .unwrap()
}

fn run(make: &dyn Fn() -> Box<dyn Workload>, shards: usize, refs: u64) -> ExperimentResult {
    let session = EmulationSession::builder()
        .host(host())
        .board(board())
        .parallelism(shards)
        .batch(512)
        .build()
        .unwrap();
    let mut workload = make();
    session.run(&mut *workload, refs).unwrap()
}

fn assert_shards_match_serial(name: &str, make: &dyn Fn() -> Box<dyn Workload>, refs: u64) {
    let serial = run(make, 1, refs);
    assert_eq!(
        serial.retries_posted, 0,
        "{name}: healthy run must not retry"
    );
    for shards in [2usize, 4, 8] {
        let parallel = run(make, shards, refs);
        assert_eq!(
            serial.board.statistics_report(),
            parallel.board.statistics_report(),
            "{name}: {shards}-shard statistics dump diverged from serial"
        );
        assert_eq!(
            serial.retries_posted, parallel.retries_posted,
            "{name}: {shards}-shard retry count diverged"
        );
        for (node, (s, p)) in serial
            .node_stats
            .iter()
            .zip(&parallel.node_stats)
            .enumerate()
        {
            assert_eq!(
                s.counters(),
                p.counters(),
                "{name}: node {node} counters diverged at {shards} shards"
            );
        }
        assert_eq!(serial.bus.transactions, parallel.bus.transactions);
        assert_eq!(
            serial.machine.total_loads() + serial.machine.total_stores(),
            parallel.machine.total_loads() + parallel.machine.total_stores(),
        );
    }
}

#[test]
fn oltp_traffic_is_bit_identical_across_shard_counts() {
    let make: Box<dyn Fn() -> Box<dyn Workload>> = Box::new(|| {
        Box::new(OltpWorkload::new(OltpConfig {
            journal: None,
            ..OltpConfig::scaled_default()
        }))
    });
    assert_shards_match_serial("oltp", &*make, 30_000);
}

#[test]
fn dss_traffic_is_bit_identical_across_shard_counts() {
    let make: Box<dyn Fn() -> Box<dyn Workload>> =
        Box::new(|| Box::new(DssWorkload::new(DssConfig::scaled_default())));
    assert_shards_match_serial("dss", &*make, 30_000);
}

#[test]
fn splash2_traffic_is_bit_identical_across_shard_counts() {
    let make: Box<dyn Fn() -> Box<dyn Workload>> =
        Box::new(|| Box::new(Fmm::scaled(8, 1 << 14, 7)));
    assert_shards_match_serial("splash2-fmm", &*make, 30_000);
}

fn oltp() -> Box<dyn Fn() -> Box<dyn Workload>> {
    Box::new(|| {
        Box::new(OltpWorkload::new(OltpConfig {
            journal: None,
            ..OltpConfig::scaled_default()
        }))
    })
}

fn run_monitored(
    make: &dyn Fn() -> Box<dyn Workload>,
    shards: usize,
    refs: u64,
    sample_every: Option<u64>,
) -> MonitoredRun {
    let mut builder = EmulationSession::builder()
        .host(host())
        .board(board())
        .parallelism(shards)
        .batch(512);
    if let Some(period) = sample_every {
        builder = builder.sample_every(period);
    }
    let session = builder.build().unwrap();
    let mut workload = make();
    session.run_monitored(&mut *workload, refs).unwrap()
}

#[test]
fn run_monitored_without_sampling_is_bit_identical_to_run() {
    let make = oltp();
    let serial = run(&*make, 1, 30_000);
    for shards in [1usize, 2, 4, 8] {
        let monitored = run_monitored(&*make, shards, 30_000, None);
        assert_eq!(
            serial.board.statistics_report(),
            monitored.result.board.statistics_report(),
            "{shards}-shard monitored run diverged from plain serial run"
        );
        assert_eq!(serial.retries_posted, monitored.result.retries_posted);
        assert!(monitored.series.is_empty(), "no sampling was requested");
    }
}

#[test]
fn sampling_leaves_final_counters_unchanged_and_exports_jsonl() {
    // The acceptance setup: OLTP monitored at a 4096-admitted-transaction
    // sampling period must end with exactly the counters of an
    // unmonitored run, and its JSONL series must show the cumulative
    // miss rate settling as the trace grows (the paper's Case Study 1
    // argument, §5.1, as a live time series).
    let make = oltp();
    let refs = 120_000;
    let serial = run(&*make, 1, refs);
    let monitored = run_monitored(&*make, 4, refs, Some(4096));

    assert_eq!(
        serial.board.statistics_report(),
        monitored.result.board.statistics_report(),
        "sampling barriers must not change final counters"
    );
    let points = monitored.series.points();
    assert!(
        points.len() >= 2,
        "need at least two windows, got {}",
        points.len()
    );

    // Export: one JSON object per sample, carrying the series columns.
    let text = export::jsonl_string(&monitored.series);
    assert_eq!(text.lines().count(), points.len());
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        for column in ["\"admitted\":", "\"miss_rate\":", "\"window_miss_rate\":"] {
            assert!(line.contains(column), "missing {column} in {line}");
        }
    }
    let csv = export::csv_string(&monitored.series);
    assert_eq!(csv.lines().count(), points.len() + 1);

    // Convergence: the cumulative miss rate moves less between the last
    // two samples than between the first two (cold misses dominate early
    // windows; the estimate settles with trace length).
    let first_step = (points[1].cumulative.miss_rate() - points[0].cumulative.miss_rate()).abs();
    let last = points.len() - 1;
    let last_step =
        (points[last].cumulative.miss_rate() - points[last - 1].cumulative.miss_rate()).abs();
    assert!(
        last_step <= first_step || last_step < 0.01,
        "cumulative miss rate is not converging: first step {first_step}, last step {last_step}"
    );
}

#[test]
fn adversarial_sampling_periods_are_bit_identical_across_shard_counts() {
    // Sampling barriers at hostile periods: every admitted transaction
    // (period 1), a tiny period that never aligns with anything (3), a
    // prime that lands mid-batch at every batch size (997), and a period
    // larger than the 512-transaction batch (5000). At each period the
    // sampled series and the final statistics dump must agree exactly
    // across 1, 2, 4, and 8 shards — a snapshot barrier is only correct
    // if it drains in-flight batches no matter where it cuts them.
    let make = oltp();
    let refs = 12_000;
    let plain = run(&*make, 1, refs);
    for period in [1u64, 3, 997, 5000] {
        let serial = run_monitored(&*make, 1, refs, Some(period));
        assert_eq!(
            plain.board.statistics_report(),
            serial.result.board.statistics_report(),
            "period {period}: sampling changed serial final counters"
        );
        assert!(
            !serial.series.is_empty(),
            "period {period}: serial run never sampled"
        );
        for shards in [2usize, 4, 8] {
            let parallel = run_monitored(&*make, shards, refs, Some(period));
            assert_eq!(
                serial.result.board.statistics_report(),
                parallel.result.board.statistics_report(),
                "period {period}: {shards}-shard final counters diverged"
            );
            let s = serial.series.points();
            let p = parallel.series.points();
            assert_eq!(
                s.len(),
                p.len(),
                "period {period}: {shards}-shard sample count diverged"
            );
            for (a, b) in s.iter().zip(p) {
                assert_eq!(a.index, b.index, "period {period}, {shards} shards");
                assert_eq!(a.cycle, b.cycle, "period {period}, {shards} shards");
                assert_eq!(
                    a.cumulative, b.cumulative,
                    "period {period}, {shards} shards, sample {}",
                    a.index
                );
                assert_eq!(
                    a.window, b.window,
                    "period {period}, {shards} shards, sample {}",
                    a.index
                );
                assert_eq!(
                    a.snapshot.admitted(),
                    b.snapshot.admitted(),
                    "period {period}, {shards} shards, sample {}",
                    a.index
                );
            }
        }
    }
}

#[test]
fn profiled_windows_are_bit_identical_across_shard_counts() {
    // Windowed miss-ratio profiling used to force the serial path; it now
    // observes through snapshot barriers. The proof: at every shard count
    // the profile — every window boundary, bus cycle, and per-node ratio
    // — must equal the serial profile point for point, and the final
    // statistics dump must be untouched by the mid-run barriers.
    let make = oltp();
    let refs = 24_000;
    let window = 4_000;
    let run_profiled = |shards: usize| {
        let session = EmulationSession::builder()
            .host(host())
            .board(board())
            .parallelism(shards)
            .batch(512)
            .build()
            .unwrap();
        let mut workload = make();
        session.run_profiled(&mut *workload, refs, window).unwrap()
    };

    let plain = run(&*make, 1, refs);
    let serial = run_profiled(1);
    assert_eq!(
        plain.board.statistics_report(),
        serial.board.statistics_report(),
        "profiling barriers changed the serial final counters"
    );
    assert_eq!(serial.profile.len(), (refs / window) as usize);
    assert_eq!(serial.profile.last().unwrap().end_ref, refs);
    for point in &serial.profile {
        assert_eq!(point.window_miss_ratio.len(), 4, "one ratio per node");
    }

    for shards in [2usize, 4, 8] {
        let parallel = run_profiled(shards);
        assert_eq!(
            serial.profile, parallel.profile,
            "{shards}-shard profile diverged from serial"
        );
        assert_eq!(
            serial.board.statistics_report(),
            parallel.board.statistics_report(),
            "{shards}-shard profiled run diverged from serial"
        );
    }
}

/// Deterministic synthetic trace over the 8-CPU board topology: enough
/// sharing and writes to exercise every node's snoop path.
fn synthetic_records(n: u64) -> Vec<memories_trace::TraceRecord> {
    (0..n)
        .map(|i| {
            let op = match i % 7 {
                0 | 3 => BusOp::Rwitm,
                5 => BusOp::DClaim,
                _ => BusOp::Read,
            };
            memories_trace::TraceRecord::from_transaction(&Transaction::new(
                i,
                i * 60,
                ProcId::new((i % 8) as u8),
                op,
                Address::new((i % 4096) * 128),
                SnoopResponse::Null,
            ))
        })
        .collect()
}

#[test]
fn replay_is_bit_identical_across_shard_counts() {
    let records = synthetic_records(20_000);
    let replay_at = |shards: usize| {
        let session = EmulationSession::builder()
            .board(board())
            .parallelism(shards)
            .batch(512)
            .build()
            .unwrap();
        session
            .replay(records.iter().copied().map(Ok::<_, memories::Error>), 60)
            .unwrap()
    };

    let serial = replay_at(1);
    assert_eq!(serial.records, 20_000);
    for shards in [2usize, 4, 8] {
        let parallel = replay_at(shards);
        assert_eq!(serial.records, parallel.records);
        assert_eq!(
            serial.board.statistics_report(),
            parallel.board.statistics_report(),
            "{shards}-shard replay diverged from serial"
        );
    }
}

#[test]
fn replay_monitored_series_is_bit_identical_across_shard_counts() {
    let records = synthetic_records(20_000);
    let replay_at = |shards: usize| {
        let session = EmulationSession::builder()
            .board(board())
            .parallelism(shards)
            .batch(512)
            .sample_every(997)
            .build()
            .unwrap();
        session
            .replay_monitored(records.iter().copied().map(Ok::<_, memories::Error>), 60)
            .unwrap()
    };

    let (serial, serial_report) = replay_at(1);
    assert!(!serial_report.series.is_empty());
    for shards in [2usize, 4, 8] {
        let (parallel, parallel_report) = replay_at(shards);
        assert_eq!(
            serial.board.statistics_report(),
            parallel.board.statistics_report(),
            "{shards}-shard monitored replay diverged from serial"
        );
        let s = serial_report.series.points();
        let p = parallel_report.series.points();
        assert_eq!(s.len(), p.len(), "{shards}-shard sample count diverged");
        for (a, b) in s.iter().zip(p) {
            assert_eq!(
                a.cumulative, b.cumulative,
                "{shards} shards, sample {}",
                a.index
            );
            assert_eq!(a.window, b.window, "{shards} shards, sample {}", a.index);
        }
    }
}

#[test]
fn streaming_replay_holds_a_trace_larger_than_every_buffer() {
    // 40_000 records ≫ the session's 512-transaction batch and the
    // streaming reader's 4096-record chunk, so the trace can never fit
    // any single buffer in the pipeline: the whole-trace Vec simply does
    // not exist on this path (the reader's own unit tests pin the
    // O(chunk) allocation bound). The decoded stream must land on the
    // same board as the Vec-buffered replay, at any parallelism.
    use memories_trace::TraceWriter;

    let records = synthetic_records(40_000);
    let mut bytes = Vec::new();
    let mut writer = TraceWriter::new(&mut bytes).unwrap();
    for rec in &records {
        writer.write_record(rec).unwrap();
    }
    writer.finish().unwrap();

    let buffered = EmulationSession::builder()
        .board(board())
        .parallelism(1)
        .build()
        .unwrap()
        .replay(records.iter().copied().map(Ok::<_, memories::Error>), 60)
        .unwrap();

    for shards in [1usize, 4] {
        let session = EmulationSession::builder()
            .board(board())
            .parallelism(shards)
            .batch(512)
            .build()
            .unwrap();
        let streamed = session.replay_stream(bytes.as_slice(), 60).unwrap();
        assert_eq!(streamed.records, 40_000);
        assert_eq!(
            buffered.board.statistics_report(),
            streamed.board.statistics_report(),
            "{shards}-shard streaming replay diverged from buffered serial"
        );
    }
}

#[test]
fn counter40_saturation_survives_exact_max_merge() {
    // Regression: a saturated shard part whose clamped value makes the
    // merged sum land exactly on Counter40::MAX used to lose the
    // `saturated` flag (the merge re-added values and checked `> MAX`).
    let mut total = Counter40::of(Counter40::MAX + 5); // clamped, flagged
    assert!(total.saturated());
    total.merge(Counter40::of(0));
    assert_eq!(total.value(), Counter40::MAX);
    assert!(
        total.saturated(),
        "merge must carry the part's saturation flag"
    );
}

fn arb_transaction() -> impl Strategy<Value = (u8, u8, u64, u64)> {
    (
        0u8..BusOp::ALL.len() as u8,
        0u8..8,
        0u64..(1u64 << 20),
        1u64..32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard-merged global counters equal serial observation, for any
    /// transaction stream and any number of shard-local counter banks:
    /// dealing the stream round-robin over k banks and merging them
    /// reproduces the serially observed totals exactly.
    #[test]
    fn shard_merged_global_counters_equal_serial_totals(
        raw in prop::collection::vec(arb_transaction(), 1..400),
        k in 1usize..9,
    ) {
        let mut cycle = 0u64;
        let txns: Vec<Transaction> = raw
            .iter()
            .enumerate()
            .map(|(i, &(op, proc, line, gap))| {
                cycle += gap;
                Transaction::new(
                    i as u64,
                    cycle,
                    ProcId::new(proc),
                    BusOp::ALL[op as usize],
                    Address::new(line * 128),
                    SnoopResponse::Null,
                )
            })
            .collect();

        let mut serial = GlobalCounters::default();
        for t in &txns {
            serial.observe(t);
        }

        let mut banks = vec![GlobalCounters::default(); k];
        for (i, t) in txns.iter().enumerate() {
            banks[i % k].observe(t);
        }
        let mut merged = GlobalCounters::default();
        for bank in &banks {
            merged.merge(bank);
        }

        prop_assert_eq!(merged.transactions(), serial.transactions());
        for op in BusOp::ALL {
            prop_assert_eq!(merged.count(op), serial.count(op));
        }
        prop_assert_eq!(
            merged.observed_span_cycles(),
            serial.observed_span_cycles()
        );
    }

    /// The 40-bit counters' saturation flag survives any sharded merge:
    /// folding per-shard parts (some possibly saturated) in any grouping
    /// reports `saturated` exactly when serially accumulating every
    /// contribution would — including the sum-lands-exactly-on-MAX edge.
    #[test]
    fn counter40_saturation_survives_parallel_merge(
        parts in prop::collection::vec(0u64..Counter40::MAX + 1000, 1..8),
    ) {
        // Serial reference: one counter absorbing every contribution.
        let mut serial = Counter40::new();
        for &p in &parts {
            serial.add(p);
        }

        // Parallel path: per-shard counters merged pairwise, as the
        // engine does with per-shard GlobalCounters banks at finish.
        let mut merged = Counter40::new();
        for &p in &parts {
            merged.merge(Counter40::of(p));
        }

        prop_assert_eq!(merged.value(), serial.value());
        prop_assert_eq!(merged.saturated(), serial.saturated());
    }
}
