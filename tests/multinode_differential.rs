//! Differential validation of *multi-node* board configurations against
//! the independent multi-node reference simulator — covering the address
//! filter's partitioning, domain isolation, and the lock-step remote
//! summary path that the single-node oracle cannot reach.

use memories::{BoardConfig, CacheParams, MemoriesBoard, NodeSlot, TimingConfig};
use memories_bus::{Address, BusListener, BusOp, NodeId, ProcId, SnoopResponse};
use memories_protocol::{standard, ProtocolTable};
use memories_sim::{compare_counts, MultiNodeSim};
use memories_trace::TraceRecord;
use proptest::prelude::*;

fn params(capacity: u64, ways: u32) -> CacheParams {
    CacheParams::builder()
        .capacity(capacity)
        .ways(ways)
        .line_size(128)
        .allow_scaled_down()
        .build()
        .unwrap()
}

/// Runs the same trace through a board and the reference model built from
/// identical slots; every node's counters must agree exactly.
fn run_both(slots: Vec<(CacheParams, ProtocolTable, u8, Vec<ProcId>)>, trace: &[TraceRecord]) {
    let board_slots: Vec<NodeSlot> = slots
        .iter()
        .map(|(p, proto, domain, cpus)| {
            NodeSlot::new(*p, cpus.iter().copied())
                .with_protocol(proto.clone())
                .in_domain(*domain)
        })
        .collect();
    let mut cfg = BoardConfig::from_slots(board_slots).unwrap();
    cfg.timing = TimingConfig {
        buffer_capacity: 1 << 20,
        ..TimingConfig::default()
    };
    let node_count = cfg.slots.len();
    let mut board = MemoriesBoard::new(cfg).unwrap();
    let mut sim = MultiNodeSim::new(slots);

    for (i, rec) in trace.iter().enumerate() {
        board.on_transaction(&rec.to_transaction(i as u64, i as u64 * 60));
        sim.step(rec);
    }
    for n in 0..node_count {
        let report = compare_counts(board.node(NodeId::new(n as u8)).counters(), sim.counts(n));
        assert!(report.matches(), "node {n} diverged:\n{report}");
    }
}

fn arb_record(max_line: u64) -> impl Strategy<Value = TraceRecord> {
    (
        prop_oneof![
            8 => Just(BusOp::Read),
            4 => Just(BusOp::Rwitm),
            2 => Just(BusOp::DClaim),
            2 => Just(BusOp::WriteBack),
            1 => Just(BusOp::Flush),
            1 => Just(BusOp::DmaRead),
            1 => Just(BusOp::DmaWrite),
            1 => Just(BusOp::Sync),
        ],
        0u8..10,
        0u64..max_line,
        prop_oneof![
            4 => Just(SnoopResponse::Null),
            1 => Just(SnoopResponse::Shared),
            1 => Just(SnoopResponse::Modified),
        ],
    )
        .prop_map(|(op, proc, line, resp)| {
            TraceRecord::new(op, ProcId::new(proc), resp, Address::new(line * 128))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two-node machines: partitioning plus remote coherence.
    #[test]
    fn two_node_board_matches_reference(
        trace in prop::collection::vec(arb_record(256), 1..600),
        ways in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        // CPUs 8 and 9 exist in the trace but belong to no node: the
        // filter must ignore them identically in both models.
        let slots = vec![
            (params(8 << 10, ways), standard::mesi(), 0u8, (0..4).map(ProcId::new).collect()),
            (params(8 << 10, ways), standard::mesi(), 0u8, (4..8).map(ProcId::new).collect()),
        ];
        run_both(slots, &trace);
    }

    /// Mixed protocols across nodes of the same machine (§3.2's selling
    /// point), plus a second isolated domain.
    #[test]
    fn mixed_protocol_domains_match_reference(
        trace in prop::collection::vec(arb_record(128), 1..500),
    ) {
        let slots = vec![
            (params(4 << 10, 2), standard::mesi(), 0u8, (0..4).map(ProcId::new).collect()),
            (params(4 << 10, 2), standard::moesi(), 0u8, (4..8).map(ProcId::new).collect()),
            (params(16 << 10, 4), standard::msi(), 1u8, (0..8).map(ProcId::new).collect()),
        ];
        run_both(slots, &trace);
    }

    /// Asymmetric capacities per node (each node controller has its own
    /// SDRAM tables).
    #[test]
    fn asymmetric_nodes_match_reference(
        trace in prop::collection::vec(arb_record(512), 1..500),
    ) {
        let slots = vec![
            (params(4 << 10, 1), standard::mesi(), 0u8, (0..2).map(ProcId::new).collect()),
            (params(8 << 10, 2), standard::mesi(), 0u8, (2..4).map(ProcId::new).collect()),
            (params(16 << 10, 4), standard::mesi(), 0u8, (4..6).map(ProcId::new).collect()),
            (params(32 << 10, 8), standard::mesi(), 0u8, (6..8).map(ProcId::new).collect()),
        ];
        run_both(slots, &trace);
    }
}

#[test]
fn long_deterministic_multinode_trace_agrees() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(31337);
    let trace: Vec<TraceRecord> = (0..100_000)
        .map(|_| {
            let op = match rng.random_range(0..12) {
                0..=6 => BusOp::Read,
                7..=8 => BusOp::Rwitm,
                9 => BusOp::DClaim,
                10 => BusOp::WriteBack,
                _ => BusOp::DmaWrite,
            };
            TraceRecord::new(
                op,
                ProcId::new(rng.random_range(0..8)),
                SnoopResponse::Null,
                Address::new(rng.random_range(0..8192u64) * 128),
            )
        })
        .collect();
    let slots = vec![
        (
            params(256 << 10, 4),
            standard::mesi(),
            0u8,
            (0..4).map(ProcId::new).collect(),
        ),
        (
            params(256 << 10, 4),
            standard::mesi(),
            0u8,
            (4..8).map(ProcId::new).collect(),
        ),
    ];
    run_both(slots, &trace);
}
