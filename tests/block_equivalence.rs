//! Property proof for the batch-native data path: delivering any stream
//! as [`TransactionBlock`]s — at any block size, to the board directly
//! or through the engine at any shard count — is bit-identical to
//! per-transaction delivery.
//!
//! Three implementations of the same semantics per case:
//!
//! * the serial [`MemoriesBoard`] fed one transaction at a time
//!   (`on_transaction`) — the reference,
//! * the serial board fed pooled blocks through `on_block`,
//! * an [`EmulationEngine`] (serial or sharded) fed through
//!   `feed_block` in chunks of the same block size.
//!
//! Equality is checked on the full statistics dump (every 40-bit counter
//! of every node plus the global counters), the retry count, the filter
//! statistics, and — the part a counter diff can miss — the tag
//! directories, probed at every address the stream touched.

use memories::{BoardConfig, CacheParams, MemoriesBoard, TimingConfig};
use memories_bus::{
    Address, BlockPool, BusListener, BusOp, NodeId, ProcId, SnoopResponse, Transaction,
    TransactionBlock,
};
use memories_sim::{EmulationEngine, EngineConfig};
use proptest::prelude::*;

fn params(capacity: u64) -> CacheParams {
    CacheParams::builder()
        .capacity(capacity)
        .ways(4)
        .line_size(128)
        .allow_scaled_down()
        .build()
        .unwrap()
}

/// A Figure 4 four-domain board over 8 CPUs, with enough ingress
/// buffering that adversarial streams never hit the timing-dependent
/// overflow path (retry equivalence is still asserted — both paths must
/// agree on the count, which is then provably zero).
fn board() -> MemoriesBoard {
    let mut cfg = BoardConfig::parallel_configs(
        vec![
            params(1 << 20),
            params(2 << 20),
            params(4 << 20),
            params(8 << 20),
        ],
        (0..8).map(ProcId::new).collect(),
    )
    .unwrap();
    cfg.timing = TimingConfig {
        buffer_capacity: 1 << 20,
        ..TimingConfig::default()
    };
    MemoriesBoard::new(cfg).unwrap()
}

fn arb_step() -> impl Strategy<Value = (u8, u8, u64, u64)> {
    (
        0u8..BusOp::ALL.len() as u8,
        0u8..10, // ids ≥ 8 exercise the filter-drop path
        0u64..512,
        1u64..90,
    )
}

fn build_stream(raw: &[(u8, u8, u64, u64)]) -> Vec<Transaction> {
    let mut cycle = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, &(op, proc, line, gap))| {
            cycle += gap;
            Transaction::new(
                i as u64,
                cycle,
                ProcId::new(proc),
                BusOp::ALL[op as usize],
                Address::new(line * 128),
                SnoopResponse::Null,
            )
        })
        .collect()
}

/// Probe every node's tag directory at every address the stream touched
/// and compare the MESI states between two boards.
fn assert_directories_match(
    a: &MemoriesBoard,
    b: &MemoriesBoard,
    txns: &[Transaction],
    what: &str,
) -> Result<(), TestCaseError> {
    for t in txns {
        for n in 0..a.node_count() {
            let id = NodeId::new(n as u8);
            prop_assert_eq!(
                a.node(id).probe(t.addr),
                b.node(id).probe(t.addr),
                "{}: node {} directory diverged at {:?}",
                what,
                n,
                t.addr
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn block_delivery_is_bit_identical_to_per_transaction(
        raw in prop::collection::vec(arb_step(), 1..800),
        block_size in prop::sample::select(vec![1usize, 7, 512, 4096]),
        shards in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let txns = build_stream(&raw);

        // Reference: one transaction at a time into a serial board.
        let mut reference = board();
        for t in &txns {
            reference.on_transaction(t);
        }

        // Same stream as pooled blocks through on_block.
        let mut blocked = board();
        let pool = BlockPool::new(block_size);
        let mut block = pool.take();
        for t in &txns {
            block.push(*t);
            if block.is_full() {
                blocked.on_block(&block);
                block.clear();
            }
        }
        if !block.is_empty() {
            blocked.on_block(&block);
        }
        prop_assert_eq!(
            reference.statistics_report(),
            blocked.statistics_report(),
            "block size {}: counters diverged",
            block_size
        );
        prop_assert_eq!(reference.retries_posted(), blocked.retries_posted());
        prop_assert_eq!(reference.filter().stats(), blocked.filter().stats());
        assert_directories_match(&reference, &blocked, &txns, "board on_block")?;

        // Same stream through the engine's block path at the chosen
        // parallelism (batch size deliberately different from the block
        // size, so broadcast re-batching is exercised).
        let cfg = if shards <= 1 {
            EngineConfig::serial()
        } else {
            EngineConfig::parallel(shards).with_batch(512)
        };
        let mut engine = EmulationEngine::new(board(), cfg);
        for chunk in txns.chunks(block_size) {
            engine.feed_block(chunk);
        }
        let final_board = engine.finish().unwrap();
        prop_assert_eq!(
            reference.statistics_report(),
            final_board.statistics_report(),
            "block size {} x {} shards: engine counters diverged",
            block_size,
            shards
        );
        prop_assert_eq!(reference.retries_posted(), final_board.retries_posted());
        prop_assert_eq!(reference.filter().stats(), final_board.filter().stats());
        assert_directories_match(&reference, &final_board, &txns, "engine feed_block")?;
    }

    /// `feed_pooled` (the zero-copy handoff) agrees with `feed_block`
    /// (the borrowing path) on the same chunking.
    #[test]
    fn pooled_handoff_matches_borrowed_blocks(
        raw in prop::collection::vec(arb_step(), 1..500),
        block_size in prop::sample::select(vec![1usize, 7, 512]),
        shards in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let txns = build_stream(&raw);
        let cfg = || if shards <= 1 {
            EngineConfig::serial()
        } else {
            EngineConfig::parallel(shards).with_batch(256)
        };

        let mut borrowed = EmulationEngine::new(board(), cfg());
        for chunk in txns.chunks(block_size) {
            borrowed.feed_block(chunk);
        }
        let borrowed = borrowed.finish().unwrap();

        let pool = BlockPool::new(block_size);
        let mut pooled = EmulationEngine::new(board(), cfg());
        for chunk in txns.chunks(block_size) {
            let mut block = pool.take();
            for t in chunk {
                block.push(*t);
            }
            pooled.feed_pooled(block);
        }
        let pooled = pooled.finish().unwrap();

        prop_assert_eq!(
            borrowed.statistics_report(),
            pooled.statistics_report(),
            "block size {} x {} shards: pooled handoff diverged",
            block_size,
            shards
        );
    }
}

/// Pool lifecycle across the crate boundary: blocks recycle, keep their
/// capacity, and deref to a plain transaction slice.
#[test]
fn transaction_block_respects_capacity_invariant() {
    let pool = BlockPool::new(16);
    let mut block = pool.take();
    assert_eq!(block.capacity(), 16);
    for t in build_stream(&[(0, 0, 1, 1); 16]) {
        block.push(t);
    }
    assert!(block.is_full());
    block.clear();
    assert!(block.is_empty());
    assert_eq!(block.capacity(), 16);
    drop(block);

    // The recycled buffer comes back without a fresh allocation.
    let recycled = pool.take();
    assert_eq!(pool.stats().hits, 1);
    assert!(recycled.is_empty());
    let slice: &TransactionBlock = &recycled;
    let _: &[Transaction] = slice;
}
