//! End-to-end invariants over the whole stack: workload -> host machine
//! -> bus -> board.

use memories::{BoardConfig, CacheParams, NodeCounter};
use memories_bus::ProcId;
use memories_console::EmulationSession;
use memories_host::HostConfig;
use memories_workloads::micro::{Sequential, UniformRandom, ZipfWorkload};
use memories_workloads::{OltpConfig, OltpWorkload};

fn host() -> HostConfig {
    HostConfig {
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(128 << 10, 4, 128).unwrap(),
        ..HostConfig::s7a()
    }
}

fn cache(capacity: u64) -> CacheParams {
    CacheParams::builder()
        .capacity(capacity)
        .ways(4)
        .line_size(128)
        .allow_scaled_down()
        .build()
        .unwrap()
}

/// The board's demand traffic is exactly the host's L2 miss + upgrade
/// traffic: the board is an observer, nothing more.
#[test]
fn board_sees_exactly_the_l2_miss_traffic() {
    let board = BoardConfig::single_node(cache(4 << 20), (0..8).map(ProcId::new)).unwrap();
    let mut w = OltpWorkload::new(OltpConfig::scaled_default());
    let result = EmulationSession::builder()
        .host(host())
        .board(board)
        .build()
        .unwrap()
        .run(&mut w, 150_000)
        .unwrap();

    let machine = result.machine.total();
    let node = &result.node_stats[0];
    assert_eq!(
        node.demand_references(),
        machine.outer_misses() + machine.upgrades,
        "board demand events != host L2 misses + upgrades"
    );
    // Castouts seen by the board = dirty writebacks the host performed.
    assert_eq!(
        node.counters().get(NodeCounter::CastoutsSeen),
        machine.writebacks
    );
    // Figure 12 classification covers every L2 *miss* (not upgrades).
    let fills = node.counters().get(NodeCounter::DemandFilledMemory)
        + node.counters().get(NodeCounter::DemandFilledL3)
        + node.counters().get(NodeCounter::DemandFilledL2Shared)
        + node.counters().get(NodeCounter::DemandFilledL2Modified);
    assert_eq!(fills, machine.outer_misses());
}

/// The board never perturbs the host at realistic utilization (§3.3).
#[test]
fn no_retries_under_realistic_load() {
    let board = BoardConfig::single_node(cache(8 << 20), (0..8).map(ProcId::new)).unwrap();
    let mut w = OltpWorkload::new(OltpConfig::scaled_default());
    let result = EmulationSession::builder()
        .host(host())
        .board(board)
        .build()
        .unwrap()
        .run(&mut w, 200_000)
        .unwrap();
    assert_eq!(result.retries_posted, 0);
    assert_eq!(result.node_stats[0].events_dropped(), 0);
    assert_eq!(result.bus.retries, 0);
}

/// Determinism: identical configurations and seeds give bit-identical
/// statistics.
#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let board = BoardConfig::single_node(cache(2 << 20), (0..8).map(ProcId::new)).unwrap();
        let mut w = OltpWorkload::new(OltpConfig::scaled_default());
        let result = EmulationSession::builder()
            .host(host())
            .board(board)
            .build()
            .unwrap()
            .run(&mut w, 60_000)
            .unwrap();
        (
            result.node_stats[0].counters().clone(),
            result.machine.total().clone(),
            result.bus.transactions,
        )
    };
    assert_eq!(run(), run());
}

/// A bigger emulated cache never does worse on the same stream (LRU,
/// same line size and associativity, doubled sets).
#[test]
fn bigger_emulated_cache_is_never_worse() {
    let board = BoardConfig::parallel_configs(
        vec![
            cache(1 << 20),
            cache(2 << 20),
            cache(4 << 20),
            cache(8 << 20),
        ],
        (0..8).map(ProcId::new).collect(),
    )
    .unwrap();
    let mut w = ZipfWorkload::new(8, 1 << 18, 128, 0.85, 0.2, 99);
    let result = EmulationSession::builder()
        .host(host())
        .board(board)
        .build()
        .unwrap()
        .run(&mut w, 250_000)
        .unwrap();
    let ratios: Vec<f64> = result.node_stats.iter().map(|s| s.miss_ratio()).collect();
    for pair in ratios.windows(2) {
        assert!(
            pair[1] <= pair[0] + 0.005,
            "larger cache did worse: {ratios:?}"
        );
    }
}

/// A stream that fits the emulated cache converges to pure cold misses.
#[test]
fn resident_working_set_converges_to_cold_misses_only() {
    let board = BoardConfig::single_node(cache(8 << 20), (0..2).map(ProcId::new)).unwrap();
    let host = HostConfig {
        num_cpus: 2,
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(64 << 10, 2, 128).unwrap(),
        ..HostConfig::s7a()
    };
    // 2 CPUs x 1 MB regions, looping: fits the 8 MB emulated cache.
    let mut w = Sequential::new(2, 1 << 20, 128);
    let result = EmulationSession::builder()
        .host(host)
        .board(board)
        .build()
        .unwrap()
        .run(&mut w, 100_000)
        .unwrap();
    let stats = &result.node_stats[0];
    // Every miss after warmup is cold; total misses == cold misses.
    assert_eq!(
        stats.demand_misses(),
        stats.cold_misses(),
        "capacity misses in a cache bigger than the footprint"
    );
    assert!(
        stats.hit_ratio() > 0.5,
        "hit ratio {:.3}",
        stats.hit_ratio()
    );
}

/// Host bus utilization responds to instruction density, and the board's
/// observed span matches the bus clock.
#[test]
fn utilization_and_time_accounting_are_consistent() {
    let board = BoardConfig::single_node(cache(2 << 20), (0..8).map(ProcId::new)).unwrap();
    let mut w = UniformRandom::new(8, 64 << 20, 0.3, 7);
    let session = EmulationSession::builder()
        .host(host())
        .board(board)
        .build()
        .unwrap();
    let result = session.run(&mut w, 50_000).unwrap();
    let util = result.bus.utilization();
    assert!(util > 0.0 && util <= 1.0);
    // The board's global counters saw every bus transaction.
    assert_eq!(
        result.board.global().transactions(),
        result.bus.transactions
    );
    assert!(result.board.global().observed_span_cycles() <= result.bus.cycles);
}

/// Multi-node + parallel-config modes compose: two domains, each with
/// two nodes, stay coherent within themselves and isolated between.
#[test]
fn domains_compose_with_multi_node_partitions() {
    use memories::NodeSlot;
    let slots = vec![
        NodeSlot::new(cache(1 << 20), (0..4).map(ProcId::new)).in_domain(0),
        NodeSlot::new(cache(1 << 20), (4..8).map(ProcId::new)).in_domain(0),
        NodeSlot::new(cache(4 << 20), (0..4).map(ProcId::new)).in_domain(1),
        NodeSlot::new(cache(4 << 20), (4..8).map(ProcId::new)).in_domain(1),
    ];
    let board = BoardConfig::from_slots(slots).unwrap();
    let mut w = OltpWorkload::new(OltpConfig::scaled_default());
    let result = EmulationSession::builder()
        .host(host())
        .board(board)
        .build()
        .unwrap()
        .run(&mut w, 120_000)
        .unwrap();

    // Within each domain, the node pair covers all CPUs: the domains saw
    // the same demand traffic in total.
    let demand = |n: usize| result.node_stats[n].demand_references();
    assert_eq!(demand(0) + demand(1), demand(2) + demand(3));
    // Remote traffic flows within domains.
    let remote0 = result.node_stats[0]
        .counters()
        .get(NodeCounter::RemoteReadsSeen);
    assert!(remote0 > 0, "no remote reads seen within domain 0");
}
