//! Property tests of the host MESI model, driven by the `memories-verify`
//! fuzzer's deterministic stream generator.
//!
//! Two invariants over arbitrary load/store/DMA interleavings:
//!
//! * **SWMR** (single writer or multiple readers): after every access, at
//!   most one cache holds a line writable (Exclusive or Modified), and if
//!   one does, every other cache holds that line Invalid.
//! * **Data value**: the cache holding a line Modified is the cache of
//!   the CPU that last stored to it (a shadow "last writer" map is the
//!   oracle), and an inbound DMA write leaves no stale cached copies.

use memories_bus::{Address, Geometry, LineAddr};
use memories_host::{AccessKind, HostConfig, HostMachine, MesiState};
use memories_verify::StreamGenerator;
use std::collections::HashMap;

const CPUS: usize = 4;

fn machine() -> HostMachine {
    // A tiny outer cache (16 KB, 2-way) over a 32-line pool forces
    // constant evictions and re-fetches alongside the coherence traffic.
    HostMachine::new(HostConfig {
        num_cpus: CPUS,
        inner_cache: None,
        outer_cache: Geometry::new(16 << 10, 2, 128).unwrap(),
        ..HostConfig::s7a()
    })
    .unwrap()
}

/// Every writable copy is exclusive across the machine.
fn assert_swmr(machine: &HostMachine, context: &str) {
    // Collect per-line states from every CPU's coherence-point cache.
    let mut holders: HashMap<LineAddr, Vec<(usize, MesiState)>> = HashMap::new();
    for cpu in 0..CPUS {
        for (line, state) in machine.cpu(cpu).outer_cache().iter() {
            if state != MesiState::Invalid {
                holders.entry(line).or_default().push((cpu, state));
            }
        }
    }
    for (line, states) in holders {
        let writable = states
            .iter()
            .filter(|(_, s)| matches!(s, MesiState::Exclusive | MesiState::Modified))
            .count();
        assert!(
            writable <= 1,
            "{context}: line {line:?} has {writable} writable holders: {states:?}"
        );
        if writable == 1 {
            assert_eq!(
                states.len(),
                1,
                "{context}: line {line:?} writable alongside other valid copies: {states:?}"
            );
        }
    }
}

#[test]
fn swmr_holds_under_random_access_streams() {
    for seed in [1u64, 42, 2026] {
        let mut machine = machine();
        let mut gen = StreamGenerator::new(seed, CPUS as u8, 32);
        for (i, acc) in gen.accesses(5_000).into_iter().enumerate() {
            let kind = if acc.store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            machine.access(acc.cpu, kind, Address::new(acc.addr));
            // Checking every access is O(n * cache); sample densely early
            // (cold-start transitions) and sparsely after.
            if i < 200 || i % 97 == 0 {
                assert_swmr(&machine, &format!("seed {seed}, access {i}"));
            }
        }
        assert_swmr(&machine, &format!("seed {seed}, final"));
    }
}

#[test]
fn modified_lines_belong_to_the_last_writer() {
    for seed in [7u64, 1999] {
        let mut machine = machine();
        let geometry = *machine.cpu(0).outer_cache().geometry();
        let mut gen = StreamGenerator::new(seed, CPUS as u8, 32);
        let mut last_writer: HashMap<LineAddr, usize> = HashMap::new();
        for (i, acc) in gen.accesses(5_000).into_iter().enumerate() {
            let addr = Address::new(acc.addr);
            let line = geometry.line_addr(addr);
            if acc.store {
                machine.access(acc.cpu, AccessKind::Store, addr);
                last_writer.insert(line, acc.cpu);
            } else {
                machine.access(acc.cpu, AccessKind::Load, addr);
            }
            // Whoever holds the line Modified must be the last storer.
            for cpu in 0..CPUS {
                if machine.cpu(cpu).outer_state(line) == MesiState::Modified {
                    assert_eq!(
                        last_writer.get(&line),
                        Some(&cpu),
                        "seed {seed}, access {i}: CPU {cpu} holds {line:?} dirty \
                         but the last store came from {:?}",
                        last_writer.get(&line)
                    );
                }
            }
        }
    }
}

#[test]
fn dma_writes_leave_no_stale_copies() {
    let mut machine = machine();
    let geometry = *machine.cpu(0).outer_cache().geometry();
    let mut gen = StreamGenerator::new(11, CPUS as u8, 32);
    for (i, acc) in gen.accesses(3_000).into_iter().enumerate() {
        let kind = if acc.store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        machine.access(acc.cpu, kind, Address::new(acc.addr));
        // Every 50th access, DMA-write the same line the CPU just
        // touched: the freshly cached copy is the stalest possible.
        if i % 50 == 49 {
            let addr = Address::new(acc.addr);
            machine.dma_write(addr);
            let line = geometry.line_addr(addr);
            for cpu in 0..CPUS {
                assert_eq!(
                    machine.cpu(cpu).outer_state(line),
                    MesiState::Invalid,
                    "access {i}: CPU {cpu} kept a copy of {line:?} across a DMA write"
                );
            }
        }
    }
}
