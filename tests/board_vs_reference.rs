//! Differential validation: the board model vs. the trace-driven
//! reference simulator — the paper's §4.1 methodology, run continuously.
//!
//! For any trace, a single-node board (all CPUs local) and the reference
//! simulator must produce *identical* counters. The two are implemented
//! independently (FPGA-structured vs. straight-line), so agreement is
//! meaningful validation of both.

use memories::{BoardConfig, CacheParams, MemoriesBoard, ReplacementPolicy, TimingConfig};
use memories_bus::{Address, BusListener, BusOp, ProcId, SnoopResponse};
use memories_protocol::{standard, ProtocolTable};
use memories_sim::{compare_counts, CacheSim};
use memories_trace::TraceRecord;
use proptest::prelude::*;

fn run_both(params: CacheParams, protocol: ProtocolTable, trace: &[TraceRecord]) {
    let mut cfg = BoardConfig::single_node(params, (0..8).map(ProcId::new)).unwrap();
    cfg.slots[0].protocol = protocol.clone();
    // Give the board ample buffering so timing never drops events (the
    // reference simulator is untimed).
    cfg.timing = TimingConfig {
        buffer_capacity: 1 << 20,
        ..TimingConfig::default()
    };
    let mut board = MemoriesBoard::new(cfg).unwrap();
    let mut sim = CacheSim::new(params, protocol);

    for (i, rec) in trace.iter().enumerate() {
        let txn = rec.to_transaction(i as u64, i as u64 * 60);
        board.on_transaction(&txn);
        sim.step(rec);
    }

    let report = compare_counts(
        board.node(memories_bus::NodeId::new(0)).counters(),
        sim.counts(),
    );
    assert!(report.matches(), "{report}");
}

fn arb_record(max_line: u64) -> impl Strategy<Value = TraceRecord> {
    (
        prop_oneof![
            8 => Just(BusOp::Read),
            4 => Just(BusOp::Rwitm),
            2 => Just(BusOp::DClaim),
            2 => Just(BusOp::WriteBack),
            1 => Just(BusOp::Flush),
            1 => Just(BusOp::DmaRead),
            1 => Just(BusOp::DmaWrite),
            1 => Just(BusOp::Sync),
            1 => Just(BusOp::IoRead),
        ],
        0u8..8,
        0u64..max_line,
        prop_oneof![
            4 => Just(SnoopResponse::Null),
            1 => Just(SnoopResponse::Shared),
            1 => Just(SnoopResponse::Modified),
        ],
    )
        .prop_map(|(op, proc, line, resp)| {
            TraceRecord::new(op, ProcId::new(proc), resp, Address::new(line * 128))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn board_matches_reference_on_random_traces(
        trace in prop::collection::vec(arb_record(512), 1..800),
        capacity_kb in prop_oneof![Just(4u64), Just(8), Just(16), Just(64)],
        ways in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        let params = CacheParams::builder()
            .capacity(capacity_kb << 10)
            .ways(ways)
            .line_size(128)
            .replacement(ReplacementPolicy::Lru)
            .allow_scaled_down()
            .build()
            .unwrap();
        run_both(params, standard::mesi(), &trace);
    }

    #[test]
    fn board_matches_reference_for_every_builtin_protocol(
        trace in prop::collection::vec(arb_record(256), 1..500),
        protocol_idx in 0usize..5,
    ) {
        let params = CacheParams::builder()
            .capacity(16 << 10)
            .ways(2)
            .line_size(128)
            .allow_scaled_down()
            .build()
            .unwrap();
        let protocol = standard::all().swap_remove(protocol_idx);
        run_both(params, protocol, &trace);
    }

    #[test]
    fn board_matches_reference_with_large_lines(
        trace in prop::collection::vec(arb_record(2048), 1..500),
    ) {
        // 1 KB lines (the paper's L3 line size in Figures 11-12).
        let params = CacheParams::builder()
            .capacity(64 << 10)
            .ways(4)
            .line_size(1024)
            .allow_scaled_down()
            .build()
            .unwrap();
        run_both(params, standard::mesi(), &trace);
    }
}

#[test]
fn long_deterministic_trace_agrees() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(2024);
    let trace: Vec<TraceRecord> = (0..200_000)
        .map(|_| {
            let op = match rng.random_range(0..12) {
                0..=6 => BusOp::Read,
                7..=8 => BusOp::Rwitm,
                9 => BusOp::DClaim,
                10 => BusOp::WriteBack,
                _ => BusOp::DmaWrite,
            };
            TraceRecord::new(
                op,
                ProcId::new(rng.random_range(0..8)),
                SnoopResponse::Null,
                Address::new(rng.random_range(0..32_768u64) * 128),
            )
        })
        .collect();
    let params = CacheParams::builder()
        .capacity(2 << 20)
        .ways(4)
        .build()
        .unwrap();
    run_both(params, standard::mesi(), &trace);
}
