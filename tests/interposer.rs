//! The interposer card end to end: a foreign (x86-style) bus stream
//! converted through a command map must drive the board identically to
//! the equivalent native 6xx stream (§3's "different bus architecture"
//! support).

use memories::{BoardConfig, CacheParams, MemoriesBoard};
use memories_bus::interposer::{CommandMap, ForeignOp, Interposer};
use memories_bus::{Address, BusListener, BusOp, NodeId, ProcId, SnoopResponse, Transaction};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn board() -> MemoriesBoard {
    let params = CacheParams::builder()
        .capacity(64 << 10)
        .ways(4)
        .line_size(128)
        .allow_scaled_down()
        .build()
        .unwrap();
    MemoriesBoard::new(BoardConfig::single_node(params, (0..8).map(ProcId::new)).unwrap()).unwrap()
}

fn foreign_stream(n: u64) -> Vec<(ProcId, ForeignOp, Address)> {
    let mut rng = SmallRng::seed_from_u64(77);
    (0..n)
        .map(|_| {
            let op = match rng.random_range(0..12) {
                0..=5 => ForeignOp::BusReadLine,
                6..=7 => ForeignOp::BusReadInvalidateLine,
                8 => ForeignOp::BusInvalidateLine,
                9 => ForeignOp::BusWriteLine,
                10 => ForeignOp::IoAgentWrite,
                _ => ForeignOp::SpecialCycle,
            };
            (
                ProcId::new(rng.random_range(0..8)),
                op,
                Address::new(rng.random_range(0..1024u64) * 128),
            )
        })
        .collect()
}

#[test]
fn interposed_stream_matches_native_stream() {
    let stream = foreign_stream(20_000);
    let map = CommandMap::p6_default();

    // Path 1: through the interposer.
    let mut interposer = Interposer::new(map.clone());
    let mut via_interposer = board();
    for (i, (proc, op, addr)) in stream.iter().enumerate() {
        if let Some(txn) = interposer.convert(i as u64 * 60, *proc, *op, *addr, SnoopResponse::Null)
        {
            via_interposer.on_transaction(&txn);
        }
    }

    // Path 2: hand-translated native transactions.
    let mut native = board();
    let mut seq = 0u64;
    for (i, (proc, op, addr)) in stream.iter().enumerate() {
        let Some(bus_op) = map.translate(*op) else {
            continue;
        };
        let txn = Transaction::new(
            seq,
            i as u64 * 60,
            *proc,
            bus_op,
            *addr,
            SnoopResponse::Null,
        );
        seq += 1;
        native.on_transaction(&txn);
    }

    assert_eq!(
        via_interposer.node(NodeId::new(0)).counters(),
        native.node(NodeId::new(0)).counters(),
        "interposed and native streams diverged"
    );
    // Special cycles were dropped before reaching the board.
    let specials = stream
        .iter()
        .filter(|(_, op, _)| *op == ForeignOp::SpecialCycle)
        .count() as u64;
    assert_eq!(interposer.dropped(), specials);
    assert_eq!(
        via_interposer.global().transactions() + specials,
        stream.len() as u64
    );
}

#[test]
fn custom_command_map_changes_board_behaviour() {
    // A map that treats x86 invalidate-line as a full RWITM (a protocol
    // "similar but not identical" case from §3).
    let text = "brl read\nbril rwitm\nbil rwitm\nbwl wb\n";
    let map = CommandMap::parse(text).unwrap();
    let mut interposer = Interposer::new(map);
    let mut b = board();

    // An invalidate-line for a cold line now allocates (RWITM semantics).
    let txn = interposer
        .convert(
            0,
            ProcId::new(0),
            ForeignOp::BusInvalidateLine,
            Address::new(0x80),
            SnoopResponse::Null,
        )
        .unwrap();
    assert_eq!(txn.op, BusOp::Rwitm);
    b.on_transaction(&txn);
    assert!(!b
        .node(NodeId::new(0))
        .probe(Address::new(0x80))
        .is_invalid());

    // Unmapped commands (io agents) are dropped by this map.
    assert!(interposer
        .convert(
            60,
            ProcId::new(0),
            ForeignOp::IoAgentWrite,
            Address::new(0x100),
            SnoopResponse::Null
        )
        .is_none());
}
