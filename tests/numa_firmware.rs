//! The NUMA sparse-directory firmware (§2.3) driven end to end by a live
//! host machine.

use std::cell::RefCell;
use std::rc::Rc;

use memories::numa::{DirectoryParams, NumaConfig, NumaEmulator};
use memories::CacheParams;
use memories_bus::{BusListener, Geometry, ListenerReaction, ProcId, Transaction};
use memories_host::{AccessKind, HostConfig, HostMachine};
use memories_workloads::{OltpConfig, OltpWorkload, RefKind, Workload, WorkloadEvent};

struct Tap(Rc<RefCell<NumaEmulator>>);

impl BusListener for Tap {
    fn on_transaction(&mut self, txn: &Transaction) -> ListenerReaction {
        self.0.borrow_mut().on_transaction(txn)
    }
}

fn run(dir_sets: usize, remote_cache: bool, refs: u64) -> NumaEmulator {
    let l3 = CacheParams::builder()
        .capacity(2 << 20)
        .ways(4)
        .allow_scaled_down()
        .build()
        .unwrap();
    let mut config = NumaConfig::four_node(
        (0..8).map(ProcId::new),
        l3,
        DirectoryParams {
            sets: dir_sets,
            ways: 8,
            line_size: 128,
        },
    )
    .unwrap();
    if remote_cache {
        config.remote_cache = Some(
            CacheParams::builder()
                .capacity(1 << 20)
                .ways(4)
                .allow_scaled_down()
                .build()
                .unwrap(),
        );
    }
    let host = HostConfig {
        inner_cache: None,
        outer_cache: Geometry::new(64 << 10, 4, 128).unwrap(),
        ..HostConfig::s7a()
    };
    let mut machine = HostMachine::new(host).unwrap();
    let shared = Rc::new(RefCell::new(NumaEmulator::new(config).unwrap()));
    machine.attach_listener(Box::new(Tap(Rc::clone(&shared))));

    let mut w = OltpWorkload::new(OltpConfig {
        journal: None,
        ..OltpConfig::scaled_default()
    });
    let mut done = 0;
    while done < refs {
        match w.next_event() {
            WorkloadEvent::Ref(r) => {
                let kind = match r.kind {
                    RefKind::Load => AccessKind::Load,
                    RefKind::Store => AccessKind::Store,
                };
                machine.access(r.cpu, kind, r.addr);
                done += 1;
            }
            WorkloadEvent::Instructions { cpu, count } => machine.tick_instructions(cpu, count),
            WorkloadEvent::Dma { write: true, addr } => machine.dma_write(addr),
            WorkloadEvent::Dma { write: false, addr } => machine.dma_read(addr),
        }
    }
    drop(machine.detach_listeners());
    let Ok(cell) = Rc::try_unwrap(shared) else {
        panic!("last handle");
    };
    cell.into_inner()
}

#[test]
fn four_way_striping_splits_requests_roughly_evenly() {
    let e = run(4096, false, 60_000);
    let c = e.counters();
    let total = c.local_requests + c.remote_requests;
    assert!(total > 10_000, "too little directory traffic: {total}");
    // With 4 nodes and 4 KB striping over a large footprint, ~3/4 of
    // requests are remote.
    let frac = c.remote_fraction();
    assert!(
        (0.6..0.9).contains(&frac),
        "remote fraction {frac:.3} outside the striped expectation"
    );
}

#[test]
fn bigger_directories_evict_less() {
    let small = run(64, false, 60_000);
    let large = run(8192, false, 60_000);
    assert!(
        small.counters().directory_evictions > large.counters().directory_evictions,
        "small dir {} evictions vs large dir {}",
        small.counters().directory_evictions,
        large.counters().directory_evictions
    );
    // Eviction invalidations track evictions.
    assert!(small.counters().eviction_invalidations > 0);
}

#[test]
fn remote_cache_absorbs_repeat_remote_traffic() {
    let e = run(4096, true, 60_000);
    let c = e.counters();
    let total = c.remote_cache_hits + c.remote_cache_misses;
    assert_eq!(
        total, c.remote_requests,
        "remote cache must see every remote request"
    );
    assert!(
        c.remote_cache_hits > 0,
        "no remote-cache hits despite OLTP reuse"
    );
}
