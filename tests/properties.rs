//! Property-based tests of core invariants across crates.

use memories::{CacheParams, NodeCounter, ReplacementPolicy};
use memories_bus::{Address, BusOp, ProcId, SnoopResponse};
use memories_protocol::{
    standard, AccessEvent, Action, ActionSet, ProtocolTable, RemoteSummary, StateId, TableBuilder,
    Transition,
};
use memories_sim::CacheSim;
use memories_trace::{window::Window, TraceReader, TraceRecord, TraceWriter};
use proptest::prelude::*;

fn arb_demand_record(max_line: u64) -> impl Strategy<Value = TraceRecord> {
    (
        prop_oneof![3 => Just(BusOp::Read), 1 => Just(BusOp::Rwitm)],
        0u8..8,
        0u64..max_line,
    )
        .prop_map(|(op, proc, line)| {
            TraceRecord::new(
                op,
                ProcId::new(proc),
                SnoopResponse::Null,
                Address::new(line * 128),
            )
        })
}

fn arb_any_record() -> impl Strategy<Value = TraceRecord> {
    (
        prop::sample::select(BusOp::ALL.to_vec()),
        0u8..64,
        0u64..(1u64 << 40),
        prop::sample::select(vec![
            SnoopResponse::Null,
            SnoopResponse::Shared,
            SnoopResponse::Modified,
            SnoopResponse::Retry,
        ]),
    )
        .prop_map(|(op, proc, line, resp)| {
            TraceRecord::new(op, ProcId::new(proc), resp, Address::new(line * 8))
        })
}

fn misses(params: CacheParams, trace: &[TraceRecord]) -> u64 {
    let mut sim = CacheSim::new(params, standard::mesi());
    sim.run(trace.iter().copied());
    sim.counts().get(NodeCounter::ReadMisses) + sim.counts().get(NodeCounter::WriteMisses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Mattson's inclusion property: with LRU, a fixed set count, and
    /// doubled ways, the bigger cache's misses never exceed the smaller's
    /// on demand-only traffic.
    #[test]
    fn lru_misses_are_monotone_in_associativity(
        trace in prop::collection::vec(arb_demand_record(256), 1..600),
    ) {
        // Same 16 sets; 1-way vs 2-way vs 4-way.
        let p = |ways: u32| CacheParams::builder()
            .capacity(u64::from(ways) * 16 * 128)
            .ways(ways)
            .line_size(128)
            .replacement(ReplacementPolicy::Lru)
            .allow_scaled_down()
            .build()
            .unwrap();
        let m1 = misses(p(1), &trace);
        let m2 = misses(p(2), &trace);
        let m4 = misses(p(4), &trace);
        prop_assert!(m2 <= m1, "2-way missed more than 1-way: {m2} > {m1}");
        prop_assert!(m4 <= m2, "4-way missed more than 2-way: {m4} > {m2}");
    }

    /// Trace files roundtrip exactly for arbitrary records.
    #[test]
    fn trace_file_roundtrip(records in prop::collection::vec(arb_any_record(), 0..300)) {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();
        let back: Vec<TraceRecord> =
            TraceReader::new(buf.as_slice()).unwrap().map(|r| r.unwrap()).collect();
        prop_assert_eq!(back, records);
    }

    /// Windowing a trace yields exactly the records whose indices fall in
    /// the window.
    #[test]
    fn windowing_selects_exact_indices(
        records in prop::collection::vec(arb_any_record(), 0..200),
        start in 0u64..100,
        len in 0u64..100,
    ) {
        let window = Window::at(start, len);
        let out: Vec<TraceRecord> =
            memories_trace::window::windowed(records.iter().copied(), window).collect();
        let expected: Vec<TraceRecord> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| window.contains(*i as u64))
            .map(|(_, r)| *r)
            .collect();
        prop_assert_eq!(out, expected);
    }

    /// Any randomly generated *complete* protocol table roundtrips
    /// through its map-file text representation.
    #[test]
    fn random_protocol_tables_roundtrip(
        state_count in 2usize..6,
        cells in prop::collection::vec((0u8..6, 0u8..16), 200..400),
        initial_fill in 0u8..6,
    ) {
        let names = ["I", "A", "B", "C", "D", "E"];
        let mut b = TableBuilder::new("random", &names[..state_count]).unwrap();
        // Fill everything with a base transition, then overwrite from the
        // random cell list.
        let base = Transition::to(StateId::new(initial_fill % state_count as u8));
        for event in AccessEvent::ALL {
            b.on_any_state(event, base);
        }
        let mut idx = 0usize;
        for event in AccessEvent::ALL {
            for s in 0..state_count {
                for remote in RemoteSummary::ALL {
                    let (next, action_bits) = cells[idx % cells.len()];
                    idx += 1;
                    let mut actions = ActionSet::new();
                    for (bit, a) in Action::ALL.iter().enumerate() {
                        if action_bits & (1 << bit) != 0 {
                            actions.insert(*a);
                        }
                    }
                    b.on(
                        event,
                        StateId::new(s as u8),
                        remote,
                        Transition::new(StateId::new(next % state_count as u8), actions),
                    );
                }
            }
        }
        let table = b.build().unwrap();
        let text = table.to_map_file();
        let back = ProtocolTable::parse_map_file(&text).unwrap();
        prop_assert_eq!(table, back);
    }

    /// Cold misses never exceed total misses, and cold misses never
    /// exceed the number of distinct lines touched.
    #[test]
    fn cold_miss_accounting(trace in prop::collection::vec(arb_demand_record(128), 1..500)) {
        let params = CacheParams::builder()
            .capacity(8 << 10)
            .ways(2)
            .allow_scaled_down()
            .build()
            .unwrap();
        let mut sim = CacheSim::new(params, standard::mesi());
        sim.run(trace.iter().copied());
        let c = sim.counts();
        let cold = c.get(NodeCounter::ReadColdMisses) + c.get(NodeCounter::WriteColdMisses);
        let total = c.get(NodeCounter::ReadMisses) + c.get(NodeCounter::WriteMisses);
        prop_assert!(cold <= total);
        let distinct: std::collections::HashSet<u64> =
            trace.iter().map(|r| r.addr.value() / 128).collect();
        prop_assert!(cold <= distinct.len() as u64);
    }

    /// Geometry decomposition is a bijection: (tag, set) <-> line.
    #[test]
    fn geometry_tag_set_roundtrip(
        addr in 0u64..(1u64 << 50),
        ways in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        line_pow in 7u32..14,
        set_pow in 1u32..12,
    ) {
        let line_size = 1u64 << line_pow;
        let capacity = (1u64 << set_pow) * u64::from(ways) * line_size;
        let g = memories_bus::Geometry::new(capacity, ways, line_size).unwrap();
        let line = g.line_addr(Address::new(addr));
        let back = g.line_from_parts(g.tag(line), g.set_index(line));
        prop_assert_eq!(line, back);
        prop_assert_eq!(g.line_base(line), Address::new(addr).align_down(line_size));
    }
}

/// A non-property sanity check that proptest regressions can anchor on:
/// the MESI single-node state machine never produces an intervention
/// from an absent line.
#[test]
fn absent_lines_never_intervene() {
    let params = CacheParams::builder()
        .capacity(4 << 10)
        .ways(1)
        .allow_scaled_down()
        .build()
        .unwrap();
    let mut sim = CacheSim::new(params, standard::mesi());
    // Remote traffic only (nothing local ever allocates).
    for i in 0..100u64 {
        sim.step(&TraceRecord::new(
            BusOp::DmaWrite,
            ProcId::new(0),
            SnoopResponse::Null,
            Address::new(i * 128),
        ));
    }
    assert_eq!(sim.counts().get(NodeCounter::InterventionsShared), 0);
    assert_eq!(sim.counts().get(NodeCounter::InterventionsModified), 0);
}
