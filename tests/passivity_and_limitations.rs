//! The board's passivity and its documented limitations (§3.4).

use memories::{BoardConfig, CacheParams, MemoriesBoard, NodeCounter, TraceCapture};
use memories_bus::{Address, BusListener, BusOp, NodeId, ProcId, SnoopResponse, Transaction};
use memories_console::{EmulationSession, Shared};
use memories_host::{HostConfig, MesiState};
use memories_workloads::micro::UniformRandom;

fn cache(capacity: u64) -> CacheParams {
    CacheParams::builder()
        .capacity(capacity)
        .ways(2)
        .line_size(128)
        .allow_scaled_down()
        .build()
        .unwrap()
}

fn host(cpus: usize) -> HostConfig {
    HostConfig {
        num_cpus: cpus,
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(4 << 10, 2, 128).unwrap(),
        ..HostConfig::s7a()
    }
}

/// Passivity: attaching the board changes nothing about the host's
/// execution — same machine counters with and without the board.
#[test]
fn attaching_the_board_does_not_perturb_the_host() {
    let run = |with_board: bool| {
        let board = BoardConfig::single_node(cache(1 << 20), (0..4).map(ProcId::new)).unwrap();
        let session = EmulationSession::builder()
            .host(host(4))
            .board(board)
            .build()
            .unwrap();
        let mut w = UniformRandom::new(4, 8 << 20, 0.3, 42);
        if with_board {
            let r = session.run(&mut w, 40_000).unwrap();
            (r.machine.total().clone(), r.bus.transactions)
        } else {
            // Same machine, no board: drive it directly.
            let mut machine = memories_host::HostMachine::new(host(4)).unwrap();
            use memories_host::AccessKind;
            use memories_workloads::{RefKind, Workload, WorkloadEvent};
            let mut done = 0;
            while done < 40_000 {
                match w.next_event() {
                    WorkloadEvent::Ref(r) => {
                        let kind = match r.kind {
                            RefKind::Load => AccessKind::Load,
                            RefKind::Store => AccessKind::Store,
                        };
                        machine.access(r.cpu, kind, r.addr);
                        done += 1;
                    }
                    WorkloadEvent::Instructions { cpu, count } => {
                        machine.tick_instructions(cpu, count)
                    }
                    _ => {}
                }
            }
            (
                machine.stats().total().clone(),
                machine.bus().stats().transactions,
            )
        }
    };
    assert_eq!(run(true), run(false));
}

/// §3.4: the board cannot see clean L2 evictions, so the emulated cache
/// can believe a line is "still cached below" after the host quietly
/// dropped it. We construct that divergence explicitly.
#[test]
fn clean_evictions_are_invisible_to_the_board() {
    let board_cfg = BoardConfig::single_node(cache(1 << 20), [ProcId::new(0)]).unwrap();
    let board = Shared::new(MemoriesBoard::new(board_cfg).unwrap());
    let mut machine = memories_host::HostMachine::new(host(1)).unwrap();
    machine.attach_listener(Box::new(board.handle()));

    // Host L2: 4 KB / 2-way / 128 B = 16 sets. Lines 0, 16, 32 conflict.
    let line0 = Address::new(0);
    machine.load(0, line0); // clean fill (Exclusive)
    machine.load(0, Address::new(16 * 128));
    machine.load(0, Address::new(32 * 128)); // silently evicts line 0

    let host_line = machine.config().outer_cache.line_addr(line0);
    assert_eq!(machine.cpu(0).outer_state(host_line), MesiState::Invalid);
    // The board still tracks the line as resident — it never saw the
    // clean eviction.
    board.with(|b| {
        assert!(
            !b.node(NodeId::new(0)).probe(line0).is_invalid(),
            "the board should still believe line 0 is cached"
        );
    });

    // The host re-reads line 0: to the board this looks like an L3 hit
    // even though the L2 had dropped it — the modeled inaccuracy of a
    // passive, non-inclusive emulator.
    machine.load(0, line0);
    board.with(|b| {
        let s = b.node_stats(NodeId::new(0));
        assert_eq!(s.counters().get(NodeCounter::ReadHits), 1);
    });
}

/// §3.4's other ramification: a DClaim can arrive for a line the
/// emulated cache has evicted (the host L2 still held it shared). The
/// board counts these as upgrade misses rather than failing.
#[test]
fn upgrades_for_evicted_lines_are_counted_not_fatal() {
    let board_cfg = BoardConfig::single_node(
        // Tiny emulated cache: 2 sets x 2 ways.
        CacheParams::builder()
            .capacity(512)
            .ways(2)
            .line_size(128)
            .allow_scaled_down()
            .build()
            .unwrap(),
        [ProcId::new(0)],
    )
    .unwrap();
    let mut board = MemoriesBoard::new(board_cfg).unwrap();

    // Fill the emulated set 0 (lines 0, 2, 4 with 2 sets): line 0 evicted.
    for (i, line) in [0u64, 2, 4].iter().enumerate() {
        let t = Transaction::new(
            i as u64,
            i as u64 * 60,
            ProcId::new(0),
            BusOp::Read,
            Address::new(line * 128),
            SnoopResponse::Null,
        );
        board.on_transaction(&t);
    }
    // The host upgrades line 0 (it still has it shared).
    let t = Transaction::new(
        3,
        300,
        ProcId::new(0),
        BusOp::DClaim,
        Address::new(0),
        SnoopResponse::Null,
    );
    board.on_transaction(&t);
    let s = board.node_stats(NodeId::new(0));
    assert_eq!(s.counters().get(NodeCounter::UpgradeMisses), 1);
}

/// Gapless capture: unlike a logic analyzer, the board never pauses the
/// host, so the trace is exactly the bus stream, in order.
#[test]
fn trace_capture_is_gapless_and_ordered() {
    let capture = Shared::new(TraceCapture::new(1 << 20));
    let mut machine = memories_host::HostMachine::new(host(2)).unwrap();
    machine.attach_listener(Box::new(capture.handle()));

    let addrs: Vec<Address> = (0..500u64).map(|i| Address::new((i % 64) * 128)).collect();
    for (i, a) in addrs.iter().enumerate() {
        if i % 3 == 0 {
            machine.store(i % 2, *a);
        } else {
            machine.load(i % 2, *a);
        }
    }
    let bus_memory_txns = machine.bus().stats().memory_transactions();
    capture.with(|c| {
        assert_eq!(c.captured(), bus_memory_txns, "capture missed transactions");
        assert_eq!(c.dropped(), 0);
    });
}
