//! Property tests of the host machine's MESI coherence — the substrate
//! must be sound for anything the board observes to mean something.

use memories_bus::{Address, Geometry};
use memories_host::{HostConfig, HostMachine, MesiState};
use proptest::prelude::*;

/// One step of a random multiprocessor program.
#[derive(Clone, Copy, Debug)]
enum Op {
    Load { cpu: usize, line: u64 },
    Store { cpu: usize, line: u64 },
    DmaRead { line: u64 },
    DmaWrite { line: u64 },
    Flush { cpu: usize, line: u64 },
}

fn arb_op(cpus: usize, lines: u64) -> impl Strategy<Value = Op> {
    (0usize..cpus, 0u64..lines, 0u8..16).prop_map(move |(cpu, line, kind)| match kind {
        0..=6 => Op::Load { cpu, line },
        7..=12 => Op::Store { cpu, line },
        13 => Op::DmaRead { line },
        14 => Op::DmaWrite { line },
        _ => Op::Flush { cpu, line },
    })
}

fn machine(cpus: usize) -> HostMachine {
    let cfg = HostConfig {
        num_cpus: cpus,
        inner_cache: Some(Geometry::new(1 << 10, 2, 128).unwrap()),
        outer_cache: Geometry::new(4 << 10, 2, 128).unwrap(),
        ..HostConfig::s7a()
    };
    HostMachine::new(cfg).unwrap()
}

fn apply(m: &mut HostMachine, op: Op) {
    let addr = |line: u64| Address::new(line * 128);
    match op {
        Op::Load { cpu, line } => m.load(cpu, addr(line)),
        Op::Store { cpu, line } => m.store(cpu, addr(line)),
        Op::DmaRead { line } => m.dma_read(addr(line)),
        Op::DmaWrite { line } => m.dma_write(addr(line)),
        Op::Flush { cpu, line } => m.flush(cpu, addr(line)),
    }
}

/// The single-writer invariant: for every line, either one cache holds it
/// in M or E and nobody else holds it, or all holders have it Shared.
fn check_coherence(m: &HostMachine) -> Result<(), String> {
    use std::collections::HashMap;
    let mut holders: HashMap<u64, Vec<(usize, MesiState)>> = HashMap::new();
    for cpu in 0..m.cpu_count() {
        for (line, state) in m.cpu(cpu).outer_cache().iter() {
            holders.entry(line.value()).or_default().push((cpu, state));
        }
    }
    for (line, hs) in holders {
        let exclusive = hs
            .iter()
            .filter(|(_, s)| matches!(s, MesiState::Modified | MesiState::Exclusive))
            .count();
        if exclusive > 1 || (exclusive == 1 && hs.len() > 1) {
            return Err(format!("line {line:#x} held incoherently: {hs:?}"));
        }
    }
    Ok(())
}

/// Inclusion: every inner-cache line is also in the outer cache.
fn check_inclusion(m: &HostMachine) -> Result<(), String> {
    for cpu in 0..m.cpu_count() {
        if let Some(inner) = m.cpu(cpu).inner_cache() {
            for (line, _) in inner.iter() {
                if !m.cpu(cpu).outer_cache().contains(line) {
                    return Err(format!("cpu{cpu}: inner line {line} not in outer cache"));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mesi_single_writer_invariant_holds(
        ops in prop::collection::vec(arb_op(4, 64), 1..400),
    ) {
        let mut m = machine(4);
        for op in ops {
            apply(&mut m, op);
        }
        check_coherence(&m).map_err(TestCaseError::fail)?;
        check_inclusion(&m).map_err(TestCaseError::fail)?;
    }

    /// After a store by cpu `c`, no *other* cache holds the line valid.
    #[test]
    fn stores_invalidate_all_other_copies(
        warmup in prop::collection::vec(arb_op(4, 16), 0..100),
        cpu in 0usize..4,
        line in 0u64..16,
    ) {
        let mut m = machine(4);
        for op in warmup {
            apply(&mut m, op);
        }
        m.store(cpu, Address::new(line * 128));
        let l = m.config().outer_cache.line_addr(Address::new(line * 128));
        prop_assert_eq!(m.cpu(cpu).outer_state(l), MesiState::Modified);
        for other in 0..4 {
            if other != cpu {
                prop_assert_eq!(
                    m.cpu(other).outer_state(l),
                    MesiState::Invalid,
                    "cpu{} kept a copy after cpu{}'s store",
                    other,
                    cpu
                );
            }
        }
    }

    /// DMA writes leave no cached copies anywhere.
    #[test]
    fn dma_writes_purge_the_line(
        warmup in prop::collection::vec(arb_op(4, 16), 0..100),
        line in 0u64..16,
    ) {
        let mut m = machine(4);
        for op in warmup {
            apply(&mut m, op);
        }
        m.dma_write(Address::new(line * 128));
        let l = m.config().outer_cache.line_addr(Address::new(line * 128));
        for cpu in 0..4 {
            prop_assert_eq!(m.cpu(cpu).outer_state(l), MesiState::Invalid);
            if let Some(inner) = m.cpu(cpu).inner_cache() {
                prop_assert!(!inner.contains(l));
            }
        }
    }

    /// Bus accounting: transactions never outnumber references plus
    /// writebacks plus flushes (each access produces at most one demand
    /// transaction plus at most one castout).
    #[test]
    fn bus_traffic_is_bounded_by_reference_activity(
        ops in prop::collection::vec(arb_op(2, 32), 1..300),
    ) {
        let mut m = machine(2);
        let mut non_cpu_ops = 0u64;
        for op in &ops {
            if matches!(op, Op::DmaRead { .. } | Op::DmaWrite { .. } | Op::Flush { .. }) {
                non_cpu_ops += 1;
            }
            apply(&mut m, *op);
        }
        let stats = m.stats();
        let bus = m.bus().stats();
        let upper = stats.total().references() + stats.total().writebacks + non_cpu_ops;
        prop_assert!(
            bus.transactions <= upper,
            "{} bus transactions from {} refs (+{} wb, {} other)",
            bus.transactions,
            stats.total().references(),
            stats.total().writebacks,
            non_cpu_ops
        );
    }
}
