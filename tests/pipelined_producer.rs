//! Acceptance tests for the pipelined host producer: host MESI
//! simulation on its own thread, shipping pooled transaction blocks over
//! a bounded queue, must stay bit-identical to the alternating
//! (single-thread) path — even with mid-stream snapshot barriers — and
//! must actually relieve producer-side backpressure.

use memories::{BoardConfig, CacheParams};
use memories_bus::ProcId;
use memories_console::{EmulationSession, ExecutionOptions, LiveSource, PipelinedLiveSource};
use memories_host::HostConfig;
use memories_workloads::{OltpConfig, OltpWorkload};

fn params(capacity: u64) -> CacheParams {
    CacheParams::builder()
        .capacity(capacity)
        .ways(4)
        .line_size(128)
        .allow_scaled_down()
        .build()
        .unwrap()
}

fn host() -> HostConfig {
    HostConfig {
        num_cpus: 8,
        inner_cache: None,
        outer_cache: memories_bus::Geometry::new(128 << 10, 4, 128).unwrap(),
        ..HostConfig::s7a()
    }
}

/// Four cache candidates, each its own coherence domain — an expensive
/// board, so the consumer side dominates and the producer runs ahead.
fn board() -> BoardConfig {
    BoardConfig::parallel_configs(
        vec![
            params(1 << 20),
            params(2 << 20),
            params(4 << 20),
            params(8 << 20),
        ],
        (0..8).map(ProcId::new).collect(),
    )
    .unwrap()
}

fn oltp() -> OltpWorkload {
    OltpWorkload::new(OltpConfig {
        journal: None,
        ..OltpConfig::scaled_default()
    })
}

fn session(parallelism: usize, sample_every: Option<u64>) -> EmulationSession {
    let mut b = EmulationSession::builder()
        .host(host())
        .board(board())
        .parallelism(parallelism)
        .batch(256);
    if let Some(period) = sample_every {
        b = b.sample_every(period);
    }
    b.build().unwrap()
}

/// The producer may run a whole queue of blocks ahead of the board, yet
/// every run mode — plain and monitored, serial and sharded — must land
/// on exactly the counters of the alternating path, and monitored runs
/// must take their snapshot barriers at the exact same admitted-stream
/// positions.
#[test]
fn pipelined_runs_are_bit_identical_to_alternating_runs() {
    const REFS: u64 = 24_000;
    for parallelism in [1usize, 2, 4] {
        let plain = session(parallelism, None).run(&mut oltp(), REFS).unwrap();
        let pipelined = session(parallelism, None)
            .run_pipelined(&mut oltp(), REFS)
            .unwrap();
        assert_eq!(
            plain.board.statistics_report(),
            pipelined.board.statistics_report(),
            "parallelism {parallelism}: pipelined run diverged"
        );
        assert_eq!(plain.retries_posted, pipelined.retries_posted);
        assert_eq!(
            plain.machine.total_loads() + plain.machine.total_stores(),
            pipelined.machine.total_loads() + pipelined.machine.total_stores(),
        );
        assert_eq!(plain.bus.transactions, pipelined.bus.transactions);

        // Monitored: mid-stream snapshot barriers at a prime period must
        // land on identical sample positions and identical counters.
        let monitored = session(parallelism, Some(997))
            .run_monitored(&mut oltp(), REFS)
            .unwrap();
        let monitored_pipelined = session(parallelism, Some(997))
            .run_monitored_pipelined(&mut oltp(), REFS)
            .unwrap();
        assert_eq!(
            monitored.result.board.statistics_report(),
            monitored_pipelined.result.board.statistics_report(),
            "parallelism {parallelism}: monitored pipelined run diverged"
        );
        assert_eq!(
            plain.board.statistics_report(),
            monitored_pipelined.result.board.statistics_report(),
            "parallelism {parallelism}: barriers changed pipelined final counters"
        );
        let s = monitored.series.points();
        let p = monitored_pipelined.series.points();
        assert_eq!(
            s.len(),
            p.len(),
            "parallelism {parallelism}: sample count diverged"
        );
        for (a, b) in s.iter().zip(p) {
            assert_eq!(a.index, b.index);
            assert_eq!(
                a.snapshot.admitted(),
                b.snapshot.admitted(),
                "parallelism {parallelism}: sample {} at a different stream position",
                a.index
            );
            assert_eq!(
                a.cumulative, b.cumulative,
                "parallelism {parallelism}: sample {} counters diverged",
                a.index
            );
            assert_eq!(a.window, b.window);
        }
        assert!(
            monitored_pipelined.telemetry.producer_blocks > 0,
            "parallelism {parallelism}: producer never shipped a block"
        );
        assert_eq!(monitored.telemetry.producer_blocks, 0);
    }
}

/// The point of the producer stage: on a consumer-bound configuration
/// (expensive four-domain board, small engine batches) the alternating
/// feed loop eats a worker-queue stall on nearly every batch, while the
/// pipelined producer — shipping blocks four times the engine batch over
/// its own queue — must stall strictly less often. The engine's own
/// worker-queue backpressure moves to `consumer_stalls`, where it no
/// longer blocks host simulation.
#[test]
fn pipelined_producer_stalls_less_than_the_alternating_feed_loop() {
    const REFS: u64 = 30_000;
    let session = session(2, None);
    let options = ExecutionOptions::new();

    let mut w = oltp();
    let alternating = session
        .execute(LiveSource::new(host(), &mut w, REFS), options)
        .unwrap();

    let mut w = oltp();
    let source = PipelinedLiveSource::new(host(), &mut w, REFS).with_block_capacity(1024);
    let pipelined = session.execute(source, options).unwrap();

    assert_eq!(
        alternating.board.statistics_report(),
        pipelined.board.statistics_report(),
        "stall experiment must still be bit-identical"
    );
    assert!(
        alternating.telemetry.producer_stalls > 0,
        "premise failed: the alternating feed loop never stalled \
         (board not consumer-bound?)"
    );
    assert!(
        pipelined.telemetry.producer_blocks > 0,
        "producer never shipped a block"
    );
    assert!(
        pipelined.telemetry.producer_stalls < alternating.telemetry.producer_stalls,
        "pipelining did not reduce producer stalls: {} pipelined vs {} alternating",
        pipelined.telemetry.producer_stalls,
        alternating.telemetry.producer_stalls
    );
}
