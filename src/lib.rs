//! Workspace root of the MemorIES reproduction.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it re-exports the member
//! crates under short names for their convenience. Library users should
//! depend on the member crates directly:
//!
//! * [`memories`] — the board model (the paper's contribution).
//! * [`memories_bus`] — the 6xx-style bus substrate.
//! * [`memories_host`] — the host SMP machine.
//! * [`memories_protocol`] — programmable coherence protocol tables.
//! * [`memories_trace`] — bus trace records and files.
//! * [`memories_workloads`] — synthetic TPC-C / TPC-H / SPLASH2 drivers.
//! * [`memories_sim`] — baseline simulators and time models.
//! * [`memories_console`] — board programming and experiment running.

#![forbid(unsafe_code)]

pub use memories;
pub use memories_bus;
pub use memories_console;
pub use memories_host;
pub use memories_protocol;
pub use memories_sim;
pub use memories_trace;
pub use memories_workloads;
/// The workspace's pseudo-random generator, re-exported for examples and
/// downstream experiments. Gated behind the default `rand` feature so
/// `--no-default-features` builds the root crate without it.
#[cfg(feature = "rand")]
pub use rand;
